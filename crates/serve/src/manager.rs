//! The session manager: lifecycle API over the sharded worker pool.

use crate::config::{BackpressurePolicy, ServeConfig};
use crate::session::{
    CloseOutcome, PushReceipt, SessionId, SessionKind, SessionOutput, SessionShared,
};
use crate::shard::{run_worker, Command, Engine, IngestItem, SessionQueue, ShardShared};
use crate::telemetry::{ShardCounters, Telemetry};
use crate::ServeError;
use dhf_oximetry::{OximetryConfig, OximetryError, StreamingOximeter};
use dhf_stream::{StreamError, StreamingConfig, StreamingSeparator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Fibonacci multiplicative hash: spreads sequential session ids evenly
/// over the shards.
fn shard_of(id: u64, shards: usize) -> usize {
    ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards as u64) as usize
}

/// Synchronous per-push track validation shared by both push APIs: the
/// track count must match the session and every track the packet length.
fn validate_tracks(
    samples: usize,
    n_sources: usize,
    f0_tracks: &[&[f64]],
) -> Result<(), ServeError> {
    if f0_tracks.len() != n_sources {
        return Err(ServeError::Session(StreamError::SourceCountMismatch {
            expected: n_sources,
            got: f0_tracks.len(),
        }));
    }
    for t in f0_tracks {
        if t.len() != samples {
            return Err(ServeError::Session(StreamError::TrackLengthMismatch {
                signal: samples,
                track: t.len(),
            }));
        }
    }
    Ok(())
}

/// Finds the first non-positive or non-finite f0 value, as
/// `(track, offset)` within the packet.
fn scan_tracks(f0_tracks: &[&[f64]]) -> Option<(usize, usize)> {
    f0_tracks
        .iter()
        .enumerate()
        .find_map(|(ti, t)| t.iter().position(|&f| !f.is_finite() || f <= 0.0).map(|i| (ti, i)))
}

struct ShardHandle {
    shared: Arc<ShardShared>,
    counters: Arc<ShardCounters>,
    join: Option<JoinHandle<()>>,
}

struct SessionEntry {
    shard: usize,
    n_sources: usize,
    kind: SessionKind,
    shared: Arc<SessionShared>,
}

/// A sharded pool of worker threads multiplexing many independent
/// streaming-separation sessions.
///
/// Sessions are hash-sharded onto workers at [`open`](Self::open) and
/// pinned there for life, so a worker's caches (per-session FFT plans and
/// spectrogram buffers, plus the worker thread's thread-local planner)
/// serve all of its sessions. All methods take `&self` and are safe to
/// call from many client threads concurrently; per-session calls are
/// expected from one client at a time (packets from concurrent `push`es
/// to the *same* session are serialized in an unspecified order).
///
/// ```
/// use dhf_core::DhfConfig;
/// use dhf_serve::{ServeConfig, SessionManager};
/// use dhf_stream::StreamingConfig;
///
/// # fn main() -> Result<(), dhf_serve::ServeError> {
/// let manager = SessionManager::new(ServeConfig::new(4)?);
/// let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast())
///     .map_err(dhf_serve::ServeError::Session)?;
/// let id = manager.open(100.0, 2, scfg)?;
/// let (samples, f0_a, f0_b) = (vec![0.0; 100], vec![1.3; 100], vec![2.2; 100]);
/// manager.push(id, &samples, &[&f0_a, &f0_b])?;
/// let out = manager.poll(id)?;
/// for block in out.blocks {
///     println!("{} samples from {}", block.len(), block.start);
/// }
/// let rest = manager.close(id)?;
/// println!("final {} blocks", rest.blocks.len());
/// # Ok(())
/// # }
/// ```
pub struct SessionManager {
    cfg: ServeConfig,
    shards: Vec<ShardHandle>,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
    started: Instant,
}

impl SessionManager {
    /// Starts the worker pool (one OS thread per shard).
    pub fn new(cfg: ServeConfig) -> Self {
        let shards = (0..cfg.workers())
            .map(|_| {
                let shared = Arc::new(ShardShared::default());
                let counters = Arc::new(ShardCounters::new());
                let (s, c) = (Arc::clone(&shared), Arc::clone(&counters));
                let join = std::thread::spawn(move || run_worker(s, c));
                ShardHandle { shared, counters, join: Some(join) }
            })
            .collect();
        SessionManager {
            cfg,
            shards,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
        }
    }

    /// The configuration the pool was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Sessions currently open.
    pub fn open_sessions(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Opens a session for `n_sources` sources sampled at `fs` Hz and
    /// assigns it to a shard.
    ///
    /// The session's [`StreamingSeparator`] is constructed here (cheap —
    /// plans build lazily on the first chunk) and migrates to its worker.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Session`] if the parameters are invalid.
    pub fn open(
        &self,
        fs: f64,
        n_sources: usize,
        scfg: StreamingConfig,
    ) -> Result<SessionId, ServeError> {
        let sep =
            Box::new(StreamingSeparator::new(fs, n_sources, scfg).map_err(ServeError::Session)?);
        Ok(self.register(Engine::Separation(sep), n_sources))
    }

    /// Opens a fetal-oximetry session ([`SessionKind::Oximetry`]): two
    /// sample-aligned wavelength channels are ingested with
    /// [`push_oximetry`](Self::push_oximetry), and windowed SpO2 estimates
    /// come back in [`SessionOutput::spo2`] — the serving runtime runs the
    /// paper's end task (§4.3), not just raw separation.
    ///
    /// The session drives a [`StreamingOximeter`] (two per-wavelength
    /// [`StreamingSeparator`]s plus trend extraction) on its shard's
    /// worker; `ocfg.fetal_source` names the fetal track among the
    /// `n_sources` supplied per push.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Oximetry`] if the parameters are invalid.
    pub fn open_oximetry(
        &self,
        fs: f64,
        n_sources: usize,
        scfg: StreamingConfig,
        ocfg: OximetryConfig,
    ) -> Result<SessionId, ServeError> {
        let ox = Box::new(
            StreamingOximeter::new(fs, n_sources, scfg, ocfg).map_err(ServeError::Oximetry)?,
        );
        Ok(self.register(Engine::Oximetry(ox), n_sources))
    }

    /// Assigns a freshly built engine to a shard and registers the
    /// session.
    fn register(&self, engine: Engine, n_sources: usize) -> SessionId {
        let kind = engine.kind();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = shard_of(id, self.shards.len());
        let shared = Arc::new(SessionShared::default());

        {
            let mut st = self.shards[shard].shared.state.lock().unwrap();
            st.queues.insert(id, SessionQueue::default());
            st.commands.push_back(Command::Open { id, engine, shared: Arc::clone(&shared) });
        }
        self.shards[shard].shared.cv.notify_one();

        self.sessions.lock().unwrap().insert(id, SessionEntry { shard, n_sources, kind, shared });
        SessionId(id)
    }

    /// Enqueues a packet of samples (with each source's matching f0
    /// values) for asynchronous separation.
    ///
    /// Validation is synchronous — a rejected push buffers nothing — and
    /// admission is governed by the configured
    /// [`BackpressurePolicy`]. The separation itself happens on the
    /// session's worker; collect results with [`poll`](Self::poll).
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownSession`] — never opened, or already closed.
    /// * [`ServeError::SessionFailed`] — a previous chunk failed; the
    ///   session only accepts [`poll`](Self::poll) / [`close`](Self::close).
    /// * [`ServeError::Session`] — track count/length/value validation.
    /// * [`ServeError::Busy`] — queue full under [`BackpressurePolicy::Busy`],
    ///   or the packet alone exceeds the queue capacity.
    pub fn push(
        &self,
        id: SessionId,
        samples: &[f64],
        f0_tracks: &[&[f64]],
    ) -> Result<PushReceipt, ServeError> {
        let (shard, n_sources, shared) = self.admit(id, SessionKind::Separation)?;
        if let Some(err) = shared.mailbox.lock().unwrap().error.clone() {
            return Err(ServeError::SessionFailed { session: id, error: err });
        }
        validate_tracks(samples.len(), n_sources, f0_tracks)?;

        // The O(samples) work — value scanning and packet copies — runs
        // *before* the shard lock, so the critical section is a few
        // pointer moves and never serializes other clients (or the
        // worker's batch drain) behind a memcpy.
        let bad_value = scan_tracks(f0_tracks);
        let capacity = self.cfg.queue_capacity();
        let incoming = samples.len();
        let item = if bad_value.is_none() && incoming > 0 && incoming <= capacity {
            Some(IngestItem {
                samples: samples.to_vec(),
                samples2: None,
                tracks: f0_tracks.iter().map(|t| t.to_vec()).collect(),
                enqueued_at: Instant::now(),
            })
        } else {
            None
        };
        self.enqueue(shard, id, bad_value, item, incoming)
    }

    /// Enqueues one sample-aligned dual-wavelength packet (λ1, λ2, and
    /// the shared f0 tracks) for asynchronous oximetry.
    ///
    /// Semantics mirror [`push`](Self::push): validation is synchronous
    /// and buffers nothing on rejection, admission is governed by the
    /// configured [`BackpressurePolicy`], and the SpO2 windows appear in
    /// [`poll`](Self::poll)'s [`SessionOutput::spo2`]. Queue accounting is
    /// per *stream* sample — a packet of `n` samples per channel occupies
    /// `n` units of queue capacity, since the channels advance the stream
    /// position together.
    ///
    /// # Errors
    ///
    /// Everything [`push`](Self::push) returns, plus
    /// [`ServeError::KindMismatch`] when the session is not an oximetry
    /// session and [`ServeError::Oximetry`] when the channels' lengths
    /// differ.
    pub fn push_oximetry(
        &self,
        id: SessionId,
        lambda1: &[f64],
        lambda2: &[f64],
        f0_tracks: &[&[f64]],
    ) -> Result<PushReceipt, ServeError> {
        let (shard, n_sources, shared) = self.admit(id, SessionKind::Oximetry)?;
        if let Some(err) = shared.mailbox.lock().unwrap().error.clone() {
            return Err(ServeError::SessionFailed { session: id, error: err });
        }
        if lambda1.len() != lambda2.len() {
            return Err(ServeError::Oximetry(OximetryError::ChannelLengthMismatch {
                lambda1: lambda1.len(),
                lambda2: lambda2.len(),
            }));
        }
        validate_tracks(lambda1.len(), n_sources, f0_tracks)?;

        let bad_value = scan_tracks(f0_tracks);
        let capacity = self.cfg.queue_capacity();
        let incoming = lambda1.len();
        let item = if bad_value.is_none() && incoming > 0 && incoming <= capacity {
            Some(IngestItem {
                samples: lambda1.to_vec(),
                samples2: Some(lambda2.to_vec()),
                tracks: f0_tracks.iter().map(|t| t.to_vec()).collect(),
                enqueued_at: Instant::now(),
            })
        } else {
            None
        };
        self.enqueue(shard, id, bad_value, item, incoming)
    }

    /// Looks a session up and checks the request used the API matching
    /// its kind.
    fn admit(
        &self,
        id: SessionId,
        expected: SessionKind,
    ) -> Result<(usize, usize, Arc<SessionShared>), ServeError> {
        let sessions = self.sessions.lock().unwrap();
        let e = sessions.get(&id.0).ok_or(ServeError::UnknownSession(id))?;
        if e.kind != expected {
            return Err(ServeError::KindMismatch { session: id, kind: e.kind });
        }
        Ok((e.shard, e.n_sources, Arc::clone(&e.shared)))
    }

    /// The admission path shared by both push APIs: locates the queue,
    /// reports bad track values by absolute accepted-stream position,
    /// applies the backpressure policy, and enqueues the packet.
    fn enqueue(
        &self,
        shard: usize,
        id: SessionId,
        bad_value: Option<(usize, usize)>,
        item: Option<IngestItem>,
        incoming: usize,
    ) -> Result<PushReceipt, ServeError> {
        let capacity = self.cfg.queue_capacity();
        let handle = &self.shards[shard];
        let mut st = handle.shared.state.lock().unwrap();
        let q = st.queues.get_mut(&id.0).ok_or(ServeError::UnknownSession(id))?;

        // Bad values are located by absolute position in the accepted
        // stream (under `DropOldest` evictions the engine's own stream
        // compacts, so engine-side positions can run behind these).
        if let Some((track, i)) = bad_value {
            return Err(ServeError::Session(StreamError::NonPositiveTrackValue {
                track,
                sample: q.enqueued_total + i,
            }));
        }
        if incoming == 0 {
            return Ok(PushReceipt { queued_samples: q.queued_samples, dropped_samples: 0 });
        }
        if incoming > capacity {
            handle.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Busy {
                session: id,
                queued_samples: q.queued_samples,
                incoming,
                capacity,
            });
        }
        let mut dropped = 0usize;
        if q.queued_samples + incoming > capacity {
            match self.cfg.backpressure() {
                BackpressurePolicy::Busy => {
                    handle.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Busy {
                        session: id,
                        queued_samples: q.queued_samples,
                        incoming,
                        capacity,
                    });
                }
                BackpressurePolicy::DropOldest => {
                    while q.queued_samples + incoming > capacity {
                        let evicted =
                            q.items.pop_front().expect("queued_samples > 0 implies items");
                        q.queued_samples -= evicted.samples.len();
                        dropped += evicted.samples.len();
                    }
                }
            }
        }
        q.items.push_back(item.expect("item built for every admissible push"));
        q.queued_samples += incoming;
        q.enqueued_total += incoming;
        let queued_samples = q.queued_samples;
        drop(st);
        handle.counters.queue_depth_hwm.observe(queued_samples as u64);

        handle.counters.samples_in.fetch_add(incoming as u64, Ordering::Relaxed);
        if dropped > 0 {
            handle.counters.dropped_samples.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        handle.shared.cv.notify_one();
        Ok(PushReceipt { queued_samples, dropped_samples: dropped })
    }

    /// Drains the session's completed output — separated blocks for
    /// [`SessionKind::Separation`], SpO2 windows for
    /// [`SessionKind::Oximetry`] — and surfaces its sticky failure, if
    /// any (the error stays set until the session is closed).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for a closed or foreign id.
    pub fn poll(&self, id: SessionId) -> Result<SessionOutput, ServeError> {
        let shared = {
            let sessions = self.sessions.lock().unwrap();
            let e = sessions.get(&id.0).ok_or(ServeError::UnknownSession(id))?;
            Arc::clone(&e.shared)
        };
        let mut mailbox = shared.mailbox.lock().unwrap();
        Ok(SessionOutput {
            blocks: std::mem::take(&mut mailbox.blocks),
            spo2: std::mem::take(&mut mailbox.spo2),
            error: mailbox.error.clone(),
        })
    }

    /// Closes a session: its queued packets are processed, the stream is
    /// flushed, and every block not yet polled is returned. Blocks until
    /// the worker has drained the session.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownSession`] — never opened or already closed.
    /// * [`ServeError::WorkerLost`] — the shard's worker thread died.
    pub fn close(&self, id: SessionId) -> Result<CloseOutcome, ServeError> {
        let shard = {
            let mut sessions = self.sessions.lock().unwrap();
            sessions.remove(&id.0).ok_or(ServeError::UnknownSession(id))?.shard
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        {
            let mut st = self.shards[shard].shared.state.lock().unwrap();
            let leftovers =
                st.queues.remove(&id.0).map(|q| q.items.into_iter().collect()).unwrap_or_default();
            st.commands.push_back(Command::Close { id: id.0, leftovers, ack: ack_tx });
        }
        self.shards[shard].shared.cv.notify_one();
        // A plain recv() could hang forever against a dead worker: the
        // ack sender sits inside the (still-alive) command queue, so the
        // channel never disconnects. Poll the worker's liveness while
        // waiting instead.
        loop {
            match ack_rx.recv_timeout(std::time::Duration::from_millis(50)) {
                Ok(outcome) => return Ok(outcome),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ServeError::WorkerLost { shard });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let dead = match self.shards[shard].join.as_ref() {
                        Some(join) => join.is_finished(),
                        None => true,
                    };
                    if dead {
                        // Final non-blocking look: the worker may have
                        // acked just before exiting.
                        return ack_rx.try_recv().map_err(|_| ServeError::WorkerLost { shard });
                    }
                }
            }
        }
    }

    /// Takes a point-in-time telemetry snapshot across all shards.
    pub fn telemetry(&self) -> Telemetry {
        let elapsed = self.started.elapsed();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let (open_sessions, queue_depth) = {
                    let st = h.shared.state.lock().unwrap();
                    (st.queues.len(), st.queues.values().map(|q| q.queued_samples).sum())
                };
                h.counters.snapshot(i, open_sessions, queue_depth, elapsed)
            })
            .collect();
        Telemetry { elapsed, shards }
    }

    /// Graceful shutdown: closes (and thereby flushes) every open session
    /// in id order, stops the workers, joins them, and returns the final
    /// per-session outcomes plus a last telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerLost`] if a worker died mid-shutdown.
    pub fn shutdown(mut self) -> Result<ShutdownReport, ServeError> {
        let mut ids: Vec<u64> = self.sessions.lock().unwrap().keys().copied().collect();
        ids.sort_unstable();
        let mut sessions = Vec::with_capacity(ids.len());
        for id in ids {
            let outcome = self.close(SessionId(id))?;
            sessions.push((SessionId(id), outcome));
        }
        let telemetry = self.telemetry();
        self.stop_workers();
        Ok(ShutdownReport { sessions, telemetry })
    }

    /// Signals every worker to exit and joins the threads. Idempotent.
    fn stop_workers(&mut self) {
        for h in &self.shards {
            h.shared.state.lock().unwrap().stop = true;
            h.shared.cv.notify_one();
        }
        for h in &mut self.shards {
            if let Some(join) = h.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for SessionManager {
    /// Hard stop: workers exit after their current batch; unflushed
    /// sessions are discarded. Use [`shutdown`](Self::shutdown) for the
    /// graceful path.
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// What [`SessionManager::shutdown`] leaves behind.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final outcome of every session still open at shutdown, in id
    /// order.
    pub sessions: Vec<(SessionId, CloseOutcome)>,
    /// Telemetry at the end of the run (taken after all flushes).
    pub telemetry: Telemetry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_core::DhfConfig;

    fn stream_cfg(chunk_len: usize, overlap: usize) -> StreamingConfig {
        StreamingConfig::new(chunk_len, overlap, DhfConfig::fast().with_harmonic_interp()).unwrap()
    }

    /// Two drifting quasi-periodic sources (the shared fixture), offset
    /// by `variant` so different sessions carry different streams.
    fn make_mix(fs: f64, n: usize, variant: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let duet = dhf_synth::duet::drifting_duet(fs, n, variant as u64);
        (duet.mixed, duet.f0_tracks)
    }

    /// Serial reference: the same stream through one StreamingSeparator.
    fn serial_reference(
        fs: f64,
        mix: &[f64],
        tracks: &[Vec<f64>],
        scfg: &StreamingConfig,
    ) -> (Vec<Vec<f64>>, usize) {
        dhf_stream::separate_streamed(mix, fs, tracks, scfg).unwrap()
    }

    #[test]
    fn lifecycle_open_push_poll_close_matches_serial() {
        let fs = 100.0;
        let n = 7000;
        let (mix, tracks) = make_mix(fs, n, 0);
        let scfg = stream_cfg(3000, 400);
        let (want, want_dropped) = serial_reference(fs, &mix, &tracks, &scfg);

        let manager = SessionManager::new(ServeConfig::new(2).unwrap());
        let id = manager.open(fs, 2, scfg).unwrap();
        assert_eq!(manager.open_sessions(), 1);

        let mut got = vec![Vec::new(); 2];
        let mut deliver = |blocks: Vec<dhf_stream::StreamBlock>| {
            for b in blocks {
                assert_eq!(got[0].len(), b.start, "blocks must arrive contiguous and in order");
                for (src, est) in b.sources.iter().enumerate() {
                    got[src].extend_from_slice(est);
                }
            }
        };
        for lo in (0..n).step_by(500) {
            let hi = (lo + 500).min(n);
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            let receipt = manager.push(id, &mix[lo..hi], &t).unwrap();
            assert_eq!(receipt.dropped_samples, 0);
            let out = manager.poll(id).unwrap();
            assert!(out.error.is_none());
            deliver(out.blocks);
        }
        let fin = manager.close(id).unwrap();
        assert!(fin.error.is_none());
        assert_eq!(fin.dropped_samples, want_dropped);
        deliver(fin.blocks);
        assert_eq!(manager.open_sessions(), 0);
        assert_eq!(got, want, "served output must be bit-identical to the serial run");

        // The id is gone now.
        assert!(matches!(manager.poll(id), Err(ServeError::UnknownSession(_))));
        assert!(matches!(manager.close(id), Err(ServeError::UnknownSession(_))));
    }

    #[test]
    fn push_validates_synchronously() {
        let fs = 100.0;
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        let id = manager.open(fs, 2, stream_cfg(3000, 600)).unwrap();
        let zeros = [0.0f64; 100];
        let good = vec![1.3f64; 100];
        assert!(manager.push(id, &zeros, &[&good, &good]).is_ok());

        assert!(matches!(
            manager.push(id, &zeros, &[&good]),
            Err(ServeError::Session(StreamError::SourceCountMismatch { expected: 2, got: 1 }))
        ));
        let short = vec![1.3f64; 99];
        assert!(matches!(
            manager.push(id, &zeros, &[&good, &short]),
            Err(ServeError::Session(StreamError::TrackLengthMismatch { signal: 100, track: 99 }))
        ));
        // Absolute position in the accepted stream: 100 (already queued)
        // + 40.
        let mut bad = vec![1.3f64; 100];
        bad[40] = -1.0;
        assert!(matches!(
            manager.push(id, &zeros, &[&good, &bad]),
            Err(ServeError::Session(StreamError::NonPositiveTrackValue { track: 1, sample: 140 }))
        ));

        // Unknown session.
        let ghost = SessionId(4096);
        assert!(matches!(
            manager.push(ghost, &zeros, &[&good, &good]),
            Err(ServeError::UnknownSession(_))
        ));
    }

    #[test]
    fn busy_policy_rejects_overflow_and_counts_it() {
        let fs = 100.0;
        let cfg = ServeConfig::new(1).unwrap().with_queue_capacity(250).unwrap();
        let manager = SessionManager::new(cfg);
        // A session with sources the engine never completes a chunk for
        // (chunk_len far beyond what we push), so the queue only drains.
        let id = manager.open(fs, 1, stream_cfg(30_000, 0)).unwrap();
        let samples = vec![0.0f64; 200];
        let track = vec![1.3f64; 200];

        let receipt = manager.push(id, &samples, &[&track]).unwrap();
        assert_eq!(receipt.queued_samples, 200);
        // 200 + 200 > 250: Busy — and nothing already queued is lost.
        // (The worker may have drained the queue already, so accept either
        // a Busy rejection or a success with an emptied queue.)
        match manager.push(id, &samples, &[&track]) {
            Err(ServeError::Busy { queued_samples, incoming: 200, capacity: 250, .. }) => {
                assert!(queued_samples > 0);
                assert!(manager.telemetry().busy_rejections() >= 1);
            }
            Ok(r) => assert!(r.queued_samples <= 250, "accepted only if the queue drained"),
            Err(e) => panic!("unexpected error: {e}"),
        }

        // A packet larger than the whole capacity is Busy under every
        // policy.
        let huge = vec![0.0f64; 251];
        let huge_track = vec![1.3f64; 251];
        assert!(matches!(
            manager.push(id, &huge, &[&huge_track]),
            Err(ServeError::Busy { incoming: 251, capacity: 250, .. })
        ));
    }

    #[test]
    fn drop_oldest_policy_evicts_and_reports() {
        let fs = 100.0;
        let cfg = ServeConfig::new(1)
            .unwrap()
            .with_queue_capacity(500)
            .unwrap()
            .with_backpressure(BackpressurePolicy::DropOldest);
        let manager = SessionManager::new(cfg);
        let id = manager.open(fs, 1, stream_cfg(30_000, 0)).unwrap();
        let track = vec![1.3f64; 200];
        let samples = vec![0.0f64; 200];

        // Stuff the queue far past capacity; every push must be accepted
        // and evictions must be reported.
        let mut dropped_total = 0usize;
        let mut receipt = None;
        for _ in 0..8 {
            let r = manager.push(id, &samples, &[&track]).unwrap();
            dropped_total += r.dropped_samples;
            receipt = Some(r);
        }
        let receipt = receipt.unwrap();
        assert!(receipt.queued_samples <= 500, "queue bound must hold");
        // The worker races the pushes, so we cannot pin the exact count —
        // but pushing 1600 samples through a 500-sample queue with a
        // 30 000-sample chunk (nothing ever emitted) must evict.
        let telemetry = manager.telemetry();
        assert_eq!(telemetry.busy_rejections(), 0, "DropOldest never rejects");
        assert_eq!(dropped_total as u64, telemetry.dropped_samples());
        assert!(dropped_total > 0, "overflow must evict under DropOldest");
    }

    #[test]
    fn failed_session_is_sticky_and_closable() {
        let fs = 100.0;
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        let id = manager.open(fs, 1, stream_cfg(3000, 0)).unwrap();
        let n = 3000;
        let mixed: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.3 * i as f64 / fs).sin()).collect();
        // A track so slow the chunk unwarps to nothing: the worker-side
        // separation fails.
        let track = vec![1e-7f64; n];
        manager.push(id, &mixed, &[&track]).unwrap();

        // The failure is asynchronous; wait for the worker to surface it.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let out = manager.poll(id).unwrap();
            if out.error.is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "worker never surfaced the failure");
            std::thread::yield_now();
        }
        // Pushes are now rejected with the sticky error…
        assert!(matches!(
            manager.push(id, &mixed, &[&track]),
            Err(ServeError::SessionFailed { .. })
        ));
        // …but close still works and reports the error.
        let fin = manager.close(id).unwrap();
        assert!(fin.error.is_some());
        // Even through the failure, the telemetry books close: the one
        // accepted packet (the rejected second push buffered nothing) is
        // fully accounted as dropped, since nothing ever came out.
        let telemetry = manager.telemetry();
        assert_eq!(telemetry.samples_in(), n as u64);
        assert_eq!(telemetry.samples_out() + telemetry.dropped_samples(), n as u64);
        assert_eq!(fin.dropped_samples, n);
    }

    #[test]
    fn mid_stream_failure_accounts_for_every_accepted_sample() {
        let fs = 100.0;
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        let id = manager.open(fs, 1, stream_cfg(3000, 0)).unwrap();
        let n = 3000;
        let mixed: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.3 * i as f64 / fs).sin()).collect();
        // The first packet's track is valid at push time (positive,
        // finite) but unwarps to nothing — the chunk fails on the worker.
        let bad = vec![1e-7f64; n];
        manager.push(id, &mixed, &[&bad]).unwrap();
        let mut accepted = n;

        // Race more packets in; each is either accepted (and must be
        // accounted) or rejected by the sticky error (and buffers
        // nothing).
        let good = vec![1.3f64; 500];
        for _ in 0..10 {
            match manager.push(id, &mixed[..500], &[&good]) {
                Ok(_) => accepted += 500,
                Err(ServeError::SessionFailed { .. }) => break,
                Err(e) => panic!("unexpected push error: {e}"),
            }
        }

        let fin = manager.close(id).unwrap();
        assert!(fin.error.is_some());
        let delivered: usize = fin.blocks.iter().map(|b| b.len()).sum();
        assert_eq!(
            delivered + fin.dropped_samples,
            accepted,
            "the per-session books must close through a mid-stream failure"
        );
        let telemetry = manager.telemetry();
        assert_eq!(telemetry.samples_in(), accepted as u64);
        assert_eq!(telemetry.samples_out() + telemetry.dropped_samples(), accepted as u64);
    }

    #[test]
    fn shutdown_flushes_every_session() {
        let fs = 100.0;
        let n = 4000;
        let scfg = stream_cfg(3000, 400);
        let manager = SessionManager::new(ServeConfig::new(3).unwrap());

        let mut expected = HashMap::new();
        for variant in 0..5 {
            let (mix, tracks) = make_mix(fs, n, variant);
            let id = manager.open(fs, 2, scfg.clone()).unwrap();
            let t: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();
            manager.push(id, &mix, &t).unwrap();
            expected.insert(id, serial_reference(fs, &mix, &tracks, &scfg));
        }
        assert_eq!(manager.open_sessions(), 5);

        let report = manager.shutdown().unwrap();
        assert_eq!(report.sessions.len(), 5);
        for (id, outcome) in report.sessions {
            let (want, want_dropped) = expected.remove(&id).expect("reported id was opened");
            assert_eq!(outcome.dropped_samples, want_dropped);
            assert_eq!(outcome.into_sources(), want, "{id} must flush to the serial output");
        }
        // Every sample pushed came back out.
        assert_eq!(report.telemetry.samples_in(), 5 * n as u64);
        assert_eq!(report.telemetry.samples_out(), 5 * n as u64);
        assert!(report.telemetry.latency_percentile(50.0).is_some());
    }

    #[test]
    fn telemetry_accounts_for_all_work() {
        let fs = 100.0;
        let n = 6200;
        let scfg = stream_cfg(3000, 600);
        let manager = SessionManager::new(ServeConfig::new(2).unwrap());
        let mut ids = Vec::new();
        for variant in 0..4 {
            let (mix, tracks) = make_mix(fs, n, variant);
            let id = manager.open(fs, 2, scfg.clone()).unwrap();
            for lo in (0..n).step_by(777) {
                let hi = (lo + 777).min(n);
                let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
                manager.push(id, &mix[lo..hi], &t).unwrap();
            }
            ids.push(id);
        }
        for id in ids {
            manager.close(id).unwrap();
        }
        let telemetry = manager.telemetry();
        assert_eq!(telemetry.samples_in(), 4 * n as u64);
        assert_eq!(telemetry.samples_out() + telemetry.dropped_samples(), 4 * n as u64);
        assert_eq!(telemetry.shards.len(), 2);
        // Queues are empty after close, and the latency histogram saw
        // every packet.
        let packets: u64 = telemetry.shards.iter().map(|s| s.packets_processed).sum();
        assert_eq!(telemetry.latency().count(), packets);
        for s in &telemetry.shards {
            assert_eq!(s.queue_depth_samples, 0);
            assert_eq!(s.open_sessions, 0);
        }
        let p50 = telemetry.latency_percentile(50.0).unwrap();
        let p99 = telemetry.latency_percentile(99.0).unwrap();
        assert!(p50 <= p99);
    }

    #[test]
    fn samples_per_sec_uses_the_active_window_not_the_idle_tail() {
        let fs = 100.0;
        let n = 6200;
        let (mix, tracks) = make_mix(fs, n, 2);
        let t: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        let id = manager.open(fs, 2, stream_cfg(3000, 600)).unwrap();
        manager.push(id, &mix, &t).unwrap();
        manager.close(id).unwrap();

        let quiesced = manager.telemetry();
        assert!(quiesced.samples_per_sec() > 0.0);
        std::thread::sleep(std::time::Duration::from_millis(400));
        let later = manager.telemetry();
        // Wall time moved on; the active window (and therefore the
        // reported throughput) must not.
        assert!(later.elapsed > quiesced.elapsed);
        assert!(
            later.active_secs() + 0.3 < later.elapsed.as_secs_f64(),
            "active window must exclude the idle tail: active {} vs wall {}",
            later.active_secs(),
            later.elapsed.as_secs_f64()
        );
        let drift = (later.samples_per_sec() - quiesced.samples_per_sec()).abs()
            / quiesced.samples_per_sec();
        assert!(drift < 1e-9, "throughput must be stable across an idle tail, drift {drift}");
    }

    #[test]
    fn tracing_fills_stage_breakdown_gauges_and_exporters() {
        let fs = 100.0;
        let n = 6200;
        let (mix, tracks) = make_mix(fs, n, 3);
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        // HPSS front filter on, so the artifact-scenario session shape
        // (the one `loadgen DHF_SCENARIO=artifact` opens) is the one
        // whose stage profile the exporters must carry.
        let scfg = stream_cfg(3000, 600).with_hpss_front(dhf_stream::HpssFrontConfig::default());
        let id = manager.open(fs, 2, scfg).unwrap();
        dhf_obs::set_enabled(true);
        for lo in (0..n).step_by(700) {
            let hi = (lo + 700).min(n);
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(id, &mix[lo..hi], &t).unwrap();
        }
        // Let the worker drain the queue through its batch path (a close
        // issued immediately would route every packet through the
        // close-leftovers path instead, and no scheduling batch would
        // ever run).
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while manager.telemetry().shards.iter().any(|s| s.queue_depth_samples > 0) {
            assert!(Instant::now() < deadline, "worker never drained the queue");
            std::thread::yield_now();
        }
        manager.close(id).unwrap();
        dhf_obs::set_enabled(false);

        let telemetry = manager.telemetry();
        let stages = telemetry.stage_breakdown();
        assert!(!stages.is_empty(), "tracing was on: the breakdown must have samples");
        // Every layer contributed: serve scheduling, stream chunking, and
        // the core/dsp pipeline stages inside each chunk.
        for stage in [
            dhf_obs::Stage::QueueWait,
            dhf_obs::Stage::EngineRun,
            dhf_obs::Stage::BatchRun,
            dhf_obs::Stage::ChunkAdvance,
            dhf_obs::Stage::HpssFilter,
            dhf_obs::Stage::StftAnalysis,
            dhf_obs::Stage::MaskBuild,
            dhf_obs::Stage::Istft,
        ] {
            assert!(stages.stage(stage).count() > 0, "no samples for stage {stage}");
        }
        // Packet-level spans cover every processed packet.
        let packets: u64 = telemetry.shards.iter().map(|s| s.packets_processed).sum();
        assert_eq!(stages.stage(dhf_obs::Stage::QueueWait).count(), packets);
        assert_eq!(stages.stage(dhf_obs::Stage::EngineRun).count(), packets);

        // Occupancy gauges moved.
        assert!(telemetry.queue_depth_hwm() > 0);
        assert!(telemetry.batch_packets_hwm() > 0);
        assert!(telemetry.batch_sessions_hwm() > 0);

        // Both human and machine renderings carry the new columns/blocks.
        let table = telemetry.to_string();
        assert!(table.contains(" plans "), "per-shard plans column:\n{table}");
        assert!(table.contains("spo2"), "per-shard spo2 column:\n{table}");
        assert!(table.contains("stages (fleet"), "stage summary:\n{table}");
        assert!(table.contains("engine_run"), "stage rows:\n{table}");
        assert!(table.contains("hpss_filter"), "front-filter stage row:\n{table}");
        let prom = telemetry.prometheus();
        assert!(prom.contains("# TYPE dhf_stage_seconds summary"));
        assert!(prom.contains("dhf_stage_seconds{stage=\"chunk_advance\",quantile=\"0.5\"}"));
        assert!(prom.contains("dhf_samples_out_total{shard=\"0\"}"));
        assert!(prom.contains("dhf_queue_depth_hwm_samples{shard=\"0\"}"));
    }

    #[test]
    fn plans_built_gauge_is_live_for_open_sessions() {
        let fs = 100.0;
        let n = 7000;
        let (mix, tracks) = make_mix(fs, n, 1);
        let scfg = stream_cfg(3000, 400);
        let t: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();

        // Serial reference for the expected plan-cache footprint of the
        // same stream: mid-stream (what the batch booking must surface
        // while the session is open) and total after the flush.
        let mut serial = dhf_stream::StreamingSeparator::new(fs, 2, scfg.clone()).unwrap();
        serial.push(&mix, &t).unwrap();
        let plans_mid_stream = serial.fft_plans_built();
        serial.flush().unwrap();
        let plans_total = serial.fft_plans_built();
        assert!(plans_mid_stream > 0, "fixture must build plans before the flush");

        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        let id = manager.open(fs, 2, scfg).unwrap();
        manager.push(id, &mix, &t).unwrap();
        // One push is one packet, so one scheduling batch processes it
        // and books the whole mid-stream delta in a single step — the
        // gauge goes from 0 straight to the serial reference while the
        // session is still open. (Before the delta booking it stayed 0
        // until close.)
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let plans = manager.telemetry().plans_built();
            if plans > 0 {
                assert_eq!(plans, plans_mid_stream as u64);
                break;
            }
            assert!(Instant::now() < deadline, "plans_built stayed 0 for the open session");
            std::thread::yield_now();
        }
        assert_eq!(manager.open_sessions(), 1, "the gauge must move before close");

        // Close books only the flush residual on top — no double count
        // of what the batches already booked.
        manager.close(id).unwrap();
        assert_eq!(manager.telemetry().plans_built(), plans_total as u64);
    }

    #[test]
    fn warm_pool_seeds_successor_sessions() {
        let fs = 100.0;
        let n = 3000; // exactly one analysis chunk
        let (mix, tracks) = make_mix(fs, n, 2);
        // Deep-prior path with warm starting; one source keeps the
        // debug-build fit budget small, and zero overlap makes the push
        // exactly one fit (no shrunken flush chunk muddying the counts).
        let scfg = StreamingConfig::new(3000, 0, DhfConfig::fast()).unwrap().with_warm_start();
        let tracks1 = [tracks[0].clone()];
        let t: Vec<&[f64]> = tracks1.iter().map(Vec::as_slice).collect();
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());

        let id = manager.open(fs, 1, scfg.clone()).unwrap();
        manager.push(id, &mix, &t).unwrap();
        manager.close(id).unwrap();
        let tele = manager.telemetry();
        assert_eq!(tele.cold_fits(), 1, "the first session's only chunk trains cold");
        assert_eq!(tele.warm_hits(), 0);
        assert_eq!(tele.warm_pool_size(), 1, "close must park the trained weights");

        // A same-shape successor adopts the parked weights, so even its
        // *first* chunk fine-tunes warm; its close re-parks them.
        let id = manager.open(fs, 1, scfg.clone()).unwrap();
        manager.push(id, &mix, &t).unwrap();
        manager.close(id).unwrap();
        let tele = manager.telemetry();
        assert_eq!(tele.warm_hits(), 1, "the successor's first chunk must resume warm");
        assert_eq!(tele.cold_fits(), 1);
        assert_eq!(tele.warm_pool_size(), 1);

        // A different-shape session (here: another sample rate) leaves
        // the pool alone.
        let id = manager.open(101.0, 1, scfg).unwrap();
        manager.push(id, &mix, &t).unwrap();
        manager.close(id).unwrap();
        let tele = manager.telemetry();
        assert_eq!(tele.cold_fits(), 2, "a different shape must not adopt pooled weights");
        assert_eq!(tele.warm_pool_size(), 2, "each shape parks its own snapshots");

        // The counters surface in both exporters.
        let table = tele.to_string();
        assert!(table.contains("warm"), "Display table must carry the warm column:\n{table}");
        let prom = tele.prometheus();
        assert!(prom.contains("dhf_warm_fits_total{shard=\"0\"} 1"));
        assert!(prom.contains("dhf_cold_fits_total{shard=\"0\"} 2"));
        assert!(prom.contains("dhf_warm_pool_size{shard=\"0\"} 2"));
    }

    /// Shared oximetry fixture: a short desaturation recording plus the
    /// session configs driving it.
    fn oximetry_fixture() -> (dhf_synth::invivo::TfoRecording, StreamingConfig, OximetryConfig) {
        use dhf_synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};
        let rec = generate(
            &DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.5 }, 80.0).with_seed(11),
        );
        let scfg = stream_cfg(3000, 600);
        let cal = dhf_oximetry::Calibration {
            w0: dhf_synth::invivo::CALIBRATION_W0,
            w1: dhf_synth::invivo::CALIBRATION_W1,
            k: dhf_synth::invivo::CALIBRATION_K,
        };
        let ocfg = OximetryConfig::new(1, 2000, 1000, cal).unwrap();
        (rec, scfg, ocfg)
    }

    #[test]
    fn oximetry_session_matches_a_serial_oximeter() {
        let (rec, scfg, ocfg) = oximetry_fixture();
        let fs = rec.config.fs;
        let n = rec.mixed[0].len();

        // Serial reference.
        let mut serial = StreamingOximeter::new(fs, 2, scfg.clone(), ocfg.clone()).unwrap();
        let mut want = Vec::new();
        for lo in (0..n).step_by(500) {
            let hi = (lo + 500).min(n);
            let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
            want.extend(serial.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &t).unwrap());
        }
        want.extend(serial.flush().unwrap().samples);
        assert!(!want.is_empty(), "fixture must emit SpO2 windows");

        // Served.
        let manager = SessionManager::new(ServeConfig::new(2).unwrap());
        let id = manager.open_oximetry(fs, 2, scfg, ocfg).unwrap();
        let mut got = Vec::new();
        for lo in (0..n).step_by(500) {
            let hi = (lo + 500).min(n);
            let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
            manager.push_oximetry(id, &rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi], &t).unwrap();
            let out = manager.poll(id).unwrap();
            assert!(out.error.is_none());
            assert!(out.blocks.is_empty(), "oximetry sessions emit SpO2, not blocks");
            got.extend(out.spo2);
        }
        let fin = manager.close(id).unwrap();
        assert!(fin.error.is_none());
        assert_eq!(fin.dropped_samples, 0);
        got.extend(fin.spo2);
        assert_eq!(got, want, "served SpO2 trend must be bit-identical to the serial run");

        // The books close: per-channel stream samples in = out, and the
        // trend stats saw every window.
        let telemetry = manager.telemetry();
        assert_eq!(telemetry.samples_in(), n as u64);
        assert_eq!(telemetry.samples_out(), n as u64);
        assert_eq!(telemetry.spo2_updates(), want.len() as u64);
        let stats = telemetry.spo2_stats();
        assert_eq!(stats.count(), want.len() as u64);
        let (min, max) = want.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
            (lo.min(s.spo2), hi.max(s.spo2))
        });
        assert_eq!(stats.min(), Some(min));
        assert_eq!(stats.max(), Some(max));
        assert!(stats.mean().unwrap() >= min && stats.mean().unwrap() <= max);
    }

    #[test]
    fn push_apis_enforce_session_kind() {
        let fs = 100.0;
        let manager = SessionManager::new(ServeConfig::new(1).unwrap());
        let sep_id = manager.open(fs, 2, stream_cfg(3000, 600)).unwrap();
        let ocfg =
            OximetryConfig::new(1, 2000, 1000, dhf_oximetry::Calibration::default()).unwrap();
        let ox_id = manager.open_oximetry(fs, 2, stream_cfg(3000, 600), ocfg).unwrap();

        let samples = vec![0.0f64; 100];
        let track = vec![1.3f64; 100];
        let t: [&[f64]; 2] = [&track, &track];
        // Wrong API for each kind.
        assert!(matches!(
            manager.push_oximetry(sep_id, &samples, &samples, &t),
            Err(ServeError::KindMismatch { kind: SessionKind::Separation, .. })
        ));
        assert!(matches!(
            manager.push(ox_id, &samples, &t),
            Err(ServeError::KindMismatch { kind: SessionKind::Oximetry, .. })
        ));
        // Channel misalignment is rejected synchronously.
        let short = vec![0.0f64; 99];
        assert!(matches!(
            manager.push_oximetry(ox_id, &samples, &short, &t),
            Err(ServeError::Oximetry(dhf_oximetry::OximetryError::ChannelLengthMismatch {
                lambda1: 100,
                lambda2: 99,
            }))
        ));
        // Track validation mirrors the separation push API.
        let mut bad = vec![1.3f64; 100];
        bad[7] = f64::NAN;
        assert!(matches!(
            manager.push_oximetry(ox_id, &samples, &samples, &[&track, &bad]),
            Err(ServeError::Session(StreamError::NonPositiveTrackValue { track: 1, sample: 7 }))
        ));
        // The matching APIs work.
        assert!(manager.push(sep_id, &samples, &t).is_ok());
        assert!(manager.push_oximetry(ox_id, &samples, &samples, &t).is_ok());
    }

    #[test]
    fn sessions_spread_over_shards() {
        // 64 hash-sharded ids over 4 shards: no shard may be starved or
        // overloaded beyond 3x the fair share (the hash is fixed, so this
        // is deterministic).
        let counts = (1..=64u64).fold(vec![0usize; 4], |mut acc, id| {
            acc[shard_of(id, 4)] += 1;
            acc
        });
        assert_eq!(counts.iter().sum::<usize>(), 64);
        for (shard, &c) in counts.iter().enumerate() {
            assert!((4..=48).contains(&c), "shard {shard} got {c} of 64 sessions");
        }
    }
}
