//! The serving determinism invariant (property test): a session's output
//! through the sharded [`SessionManager`] must be **bit-identical** to
//! running the same stream through a plain serial
//! [`dhf_stream::StreamingSeparator`] — for any number of concurrent
//! sessions, worker counts, chunkings, and push granularities.
//!
//! This is the contract that makes the serving layer safe to deploy over
//! the reproduction: scheduling, sharding, batching, and queueing may
//! reorder *work*, but never change *results*.
//!
//! The invariant deliberately spans the whole spectral data path — the
//! packed real FFT (`rfft`/`irfft`) and the SoA `Spectrogram` workspace
//! every session reuses — so a numeric change anywhere in that path that
//! made worker-side results diverge from serial ones fails here first.

use dhf_core::DhfConfig;
use dhf_serve::{ServeConfig, SessionManager};
use dhf_stream::{separate_streamed, HpssFrontConfig, StreamingConfig};
use dhf_synth::artifact::{self, ArtifactConfig};
use proptest::prelude::*;

/// Two drifting quasi-periodic sources (the shared `dhf_synth` fixture),
/// parameterized per session so every concurrent stream is distinct.
fn make_mix(fs: f64, n: usize, variant: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let duet = dhf_synth::duet::drifting_duet(fs, n, variant as u64);
    (duet.mixed, duet.f0_tracks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn served_sessions_are_bit_identical_to_serial_runs(
        n_sessions in 3usize..7,
        workers in 1usize..5,
        chunk_len in 2600usize..3400,
        overlap_frac in 0.05f64..0.40,
        packet in 180usize..900,
    ) {
        let fs = 100.0;
        let n = 6500;
        let overlap = ((chunk_len as f64 * overlap_frac) as usize).min(chunk_len / 2);
        let dhf = DhfConfig::fast().with_harmonic_interp();
        let scfg = StreamingConfig::new(chunk_len, overlap, dhf).unwrap();

        // Serial references, one independent separator per stream.
        let streams: Vec<(Vec<f64>, Vec<Vec<f64>>)> =
            (0..n_sessions).map(|s| make_mix(fs, n, s)).collect();
        let serial: Vec<(Vec<Vec<f64>>, usize)> = streams
            .iter()
            .map(|(mix, tracks)| separate_streamed(mix, fs, tracks, &scfg).unwrap())
            .collect();

        // Served: all sessions concurrently, packets interleaved
        // round-robin across sessions so every worker juggles its
        // sessions mid-stream, with interior polls racing the workers.
        let manager = SessionManager::new(ServeConfig::new(workers).unwrap());
        let ids: Vec<_> = (0..n_sessions)
            .map(|_| manager.open(fs, 2, scfg.clone()).unwrap())
            .collect();
        let mut got: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 2]; n_sessions];
        let deliver = |s: usize, blocks: Vec<dhf_stream::StreamBlock>,
                       got: &mut Vec<Vec<Vec<f64>>>| {
            for b in blocks {
                assert_eq!(got[s][0].len(), b.start, "session {s}: blocks out of order");
                for (src, est) in b.sources.iter().enumerate() {
                    got[s][src].extend_from_slice(est);
                }
            }
        };
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + packet).min(n);
            for (s, (mix, tracks)) in streams.iter().enumerate() {
                let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
                let receipt = manager.push(ids[s], &mix[lo..hi], &t).unwrap();
                prop_assert_eq!(receipt.dropped_samples, 0);
                let out = manager.poll(ids[s]).unwrap();
                prop_assert!(out.error.is_none());
                deliver(s, out.blocks, &mut got);
            }
            lo = hi;
        }
        for (s, id) in ids.iter().enumerate() {
            let fin = manager.close(*id).unwrap();
            prop_assert!(fin.error.is_none());
            prop_assert_eq!(fin.dropped_samples, serial[s].1, "session {}", s);
            deliver(s, fin.blocks, &mut got);
        }
        let report = manager.shutdown().unwrap();
        prop_assert_eq!(report.telemetry.samples_in(), (n_sessions * n) as u64);

        for (s, (want, _)) in serial.iter().enumerate() {
            prop_assert_eq!(
                &got[s], want,
                "session {} served output differs from its serial run \
                 (workers {}, chunk {}, overlap {}, packet {})",
                s, workers, chunk_len, overlap, packet
            );
        }
    }

    /// The cross-mode corollary: a served session pinned to the scalar
    /// SIMD fallback must still be bit-identical to a serial run under
    /// native dispatch. This is the serving-level proof of the kernel
    /// layer's bit-identity contract (`dhf_dsp::simd`): SSE2/AVX2/NEON
    /// may only change which instructions execute, never the samples —
    /// the same guarantee CI leans on when it re-runs the whole suite
    /// with `DHF_FORCE_SCALAR=1`.
    #[test]
    fn forced_scalar_sessions_match_native_simd_serial_runs(
        workers in 1usize..4,
        chunk_len in 2600usize..3400,
        packet in 250usize..900,
    ) {
        let fs = 100.0;
        let n = 6500;
        let scfg = StreamingConfig::new(
            chunk_len,
            chunk_len / 8,
            DhfConfig::fast().with_harmonic_interp(),
        )
        .unwrap();
        let (mix, tracks) = make_mix(fs, n, 42);

        // Serial reference under whatever the host natively dispatches.
        let (want, want_dropped) = separate_streamed(&mix, fs, &tracks, &scfg).unwrap();

        // Served run with every kernel pinned to the scalar reference
        // (released on every exit path — the override is process-wide).
        struct AutoDispatch;
        impl Drop for AutoDispatch {
            fn drop(&mut self) {
                dhf_dsp::simd::force_scalar(false);
            }
        }
        let _auto = AutoDispatch;
        dhf_dsp::simd::force_scalar(true);
        prop_assert_eq!(dhf_dsp::simd::active_level(), dhf_dsp::simd::Level::Scalar);

        let manager = SessionManager::new(ServeConfig::new(workers).unwrap());
        let id = manager.open(fs, 2, scfg).unwrap();
        let mut got = vec![Vec::new(); 2];
        let mut lo = 0usize;
        let deliver = |blocks: Vec<dhf_stream::StreamBlock>, got: &mut Vec<Vec<f64>>| {
            for b in blocks {
                assert_eq!(got[0].len(), b.start, "blocks out of order");
                for (src, est) in b.sources.iter().enumerate() {
                    got[src].extend_from_slice(est);
                }
            }
        };
        while lo < n {
            let hi = (lo + packet).min(n);
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(id, &mix[lo..hi], &t).unwrap();
            let out = manager.poll(id).unwrap();
            prop_assert!(out.error.is_none());
            deliver(out.blocks, &mut got);
            lo = hi;
        }
        let fin = manager.close(id).unwrap();
        prop_assert!(fin.error.is_none());
        prop_assert_eq!(fin.dropped_samples, want_dropped);
        deliver(fin.blocks, &mut got);

        prop_assert_eq!(
            &got, &want,
            "forced-scalar served output differs from the native serial run \
             (workers {}, chunk {}, packet {})",
            workers, chunk_len, packet
        );
    }

    /// The artifact-bearing corollary: a session contaminated by each
    /// `dhf_synth::artifact` family and opened with the HPSS front filter
    /// (the `DHF_SCENARIO=artifact` session shape) must still be
    /// bit-identical to its serial run — the front filter is part of the
    /// engine, so scheduling and batching must not perturb it either.
    #[test]
    fn artifact_sessions_with_hpss_front_match_serial_runs(
        workers in 1usize..4,
        chunk_len in 2600usize..3400,
        packet in 250usize..900,
        family in 0usize..3,
    ) {
        let fs = 100.0;
        let n = 6500;
        let scfg = StreamingConfig::new(
            chunk_len,
            chunk_len / 8,
            DhfConfig::fast().with_harmonic_interp(),
        )
        .unwrap()
        .with_hpss_front(HpssFrontConfig::default());
        let (mut mix, tracks) = make_mix(fs, n, 7);
        let art = match family {
            0 => ArtifactConfig::spikes(9),
            1 => ArtifactConfig::wander(9),
            _ => ArtifactConfig::gait(n as f64 / fs, 9),
        };
        // The duet fixture is zero-DC, so scale the unit-DC artifact
        // waveform to the mix's own amplitude instead of a DC level.
        for (x, a) in mix.iter_mut().zip(artifact::waveform(&art, n, fs)) {
            *x += 2.0 * a;
        }

        let (want, want_dropped) = separate_streamed(&mix, fs, &tracks, &scfg).unwrap();

        let manager = SessionManager::new(ServeConfig::new(workers).unwrap());
        let id = manager.open(fs, 2, scfg).unwrap();
        let mut got = vec![Vec::new(); 2];
        let deliver = |blocks: Vec<dhf_stream::StreamBlock>, got: &mut Vec<Vec<f64>>| {
            for b in blocks {
                assert_eq!(got[0].len(), b.start, "blocks out of order");
                for (src, est) in b.sources.iter().enumerate() {
                    got[src].extend_from_slice(est);
                }
            }
        };
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + packet).min(n);
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(id, &mix[lo..hi], &t).unwrap();
            let out = manager.poll(id).unwrap();
            prop_assert!(out.error.is_none());
            deliver(out.blocks, &mut got);
            lo = hi;
        }
        let fin = manager.close(id).unwrap();
        prop_assert!(fin.error.is_none());
        prop_assert_eq!(fin.dropped_samples, want_dropped);
        deliver(fin.blocks, &mut got);

        prop_assert_eq!(
            &got, &want,
            "artifact session with HPSS front differs from its serial run \
             (workers {}, chunk {}, packet {}, family {})",
            workers, chunk_len, packet, family
        );
    }
}
