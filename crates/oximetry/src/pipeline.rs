//! The end-to-end fetal oximetry pipeline: dual-wavelength mixed PPG →
//! per-wavelength DHF separation → paired fetal estimates → windowed
//! modulation ratios → an SpO2 trend (paper §4.3, Eqs. 10–11).
//!
//! Two entry points cover the offline and online regimes:
//!
//! * [`estimate_spo2_trend`] — whole-recording batch path: one
//!   [`dhf_core::RoundContext`] separates both wavelength channels (the
//!   second channel reuses the first's FFT plans), then the trend is read
//!   off sliding windows.
//! * [`StreamingOximeter`] — bounded-latency online path: two
//!   [`StreamingSeparator`]s (one per wavelength) ingest sample-aligned
//!   packets and the oximeter emits an [`Spo2Sample`] whenever both
//!   channels' separated fetal streams cover the next trend window.
//!
//! Both paths remove the optode's DC level with the same per-sample
//! one-pole tracker ([`ema_detrend`]) before separation, and both compute
//! each window's DC from the *raw* channel — the modulation ratio needs
//! `AC/DC` per wavelength, and the separator only sees (and returns)
//! pulsatile signals.

use crate::{ac_amplitude, dc_level, modulation_ratio, Calibration};
use dhf_core::{DhfConfig, DhfError, RoundContext};
use dhf_stream::{StreamError, StreamingConfig, StreamingSeparator};

/// Errors from the oximetry pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OximetryError {
    /// An [`OximetryConfig`] parameter was outside its valid domain.
    Config {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The two wavelength channels of a push (or batch call) had
    /// different lengths — the optode samples both simultaneously, so the
    /// pipeline requires sample-aligned channels.
    ChannelLengthMismatch {
        /// Samples supplied for λ1.
        lambda1: usize,
        /// Samples supplied for λ2.
        lambda2: usize,
    },
    /// The configured fetal source index does not address one of the
    /// supplied f0 tracks.
    FetalSourceOutOfRange {
        /// The configured index.
        fetal_source: usize,
        /// Number of tracks supplied.
        n_sources: usize,
    },
    /// The offline per-wavelength separation failed.
    Dhf(DhfError),
    /// A streaming separator rejected a push or failed on a chunk.
    Stream(StreamError),
}

impl std::fmt::Display for OximetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OximetryError::Config { name, message } => {
                write!(f, "invalid oximetry parameter `{name}`: {message}")
            }
            OximetryError::ChannelLengthMismatch { lambda1, lambda2 } => {
                write!(f, "wavelength channels differ in length: λ1 {lambda1} vs λ2 {lambda2}")
            }
            OximetryError::FetalSourceOutOfRange { fetal_source, n_sources } => {
                write!(f, "fetal source index {fetal_source} out of range for {n_sources} tracks")
            }
            OximetryError::Dhf(e) => write!(f, "separation failed: {e}"),
            OximetryError::Stream(e) => write!(f, "streaming separation failed: {e}"),
        }
    }
}

impl std::error::Error for OximetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OximetryError::Dhf(e) => Some(e),
            OximetryError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DhfError> for OximetryError {
    fn from(e: DhfError) -> Self {
        OximetryError::Dhf(e)
    }
}

impl From<StreamError> for OximetryError {
    fn from(e: StreamError) -> Self {
        OximetryError::Stream(e)
    }
}

/// Configuration of the trend extraction stage (shared by the offline and
/// streaming paths).
#[derive(Debug, Clone, PartialEq)]
pub struct OximetryConfig {
    /// Index of the fetal source among the supplied f0 tracks (the
    /// separated estimate the modulation ratio is computed from).
    pub fetal_source: usize,
    /// Samples per SpO2 estimate window. Each window must span several
    /// fetal cycles for a stable AC amplitude; 20–45 s at 100 Hz is the
    /// regime the paper's Figure 6 uses around each blood draw.
    pub trend_window: usize,
    /// Stride between consecutive window starts.
    pub trend_hop: usize,
    /// The Eq. 10 calibration mapping each window's modulation ratio to
    /// SpO2. Fit it from blood draws ([`Calibration::fit`]) or use a
    /// known forward model.
    pub calibration: Calibration,
    /// Time constant (seconds) of the one-pole DC tracker applied to each
    /// raw channel before separation. Must be slow against the slowest
    /// physiological component so pulsation is not eaten, and fast enough
    /// to follow optode coupling drift.
    pub dc_time_constant_s: f64,
}

impl OximetryConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OximetryError::Config`] if `trend_window` is zero,
    /// `trend_hop` is zero or exceeds `trend_window`, or the DC time
    /// constant is non-positive or non-finite.
    pub fn new(
        fetal_source: usize,
        trend_window: usize,
        trend_hop: usize,
        calibration: Calibration,
    ) -> Result<Self, OximetryError> {
        if trend_window == 0 {
            return Err(OximetryError::Config {
                name: "trend_window",
                message: "must be positive".into(),
            });
        }
        if trend_hop == 0 || trend_hop > trend_window {
            return Err(OximetryError::Config {
                name: "trend_hop",
                message: format!("must be in [1, trend_window = {trend_window}]"),
            });
        }
        Ok(OximetryConfig {
            fetal_source,
            trend_window,
            trend_hop,
            calibration,
            dc_time_constant_s: 2.0,
        })
    }

    /// Replaces the DC-tracker time constant.
    ///
    /// # Errors
    ///
    /// Returns [`OximetryError::Config`] for a non-positive or non-finite
    /// value.
    pub fn with_dc_time_constant(mut self, seconds: f64) -> Result<Self, OximetryError> {
        if !(seconds > 0.0 && seconds.is_finite()) {
            return Err(OximetryError::Config {
                name: "dc_time_constant_s",
                message: "must be positive and finite".into(),
            });
        }
        self.dc_time_constant_s = seconds;
        Ok(self)
    }

    /// One-pole smoothing coefficient for a channel sampled at `fs` Hz.
    fn dc_alpha(&self, fs: f64) -> f64 {
        1.0 - (-1.0 / (fs * self.dc_time_constant_s)).exp()
    }
}

/// One windowed SpO2 estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spo2Sample {
    /// Absolute stream position of the first sample of the window.
    pub start: usize,
    /// Window length in samples.
    pub len: usize,
    /// The window's modulation ratio `R = (AC/DC)_λ1 / (AC/DC)_λ2`
    /// (Eq. 11).
    pub ratio: f64,
    /// Calibrated SpO2 fraction for the window (Eq. 10).
    pub spo2: f64,
}

impl Spo2Sample {
    /// Time of the window centre in seconds at sampling rate `fs`.
    pub fn mid_time_s(&self, fs: f64) -> f64 {
        (self.start as f64 + self.len as f64 / 2.0) / fs
    }
}

/// Output of the offline pipeline: the SpO2 trend plus the separated
/// per-wavelength fetal estimates it was computed from (for scoring
/// against ground truth or refitting a calibration).
#[derive(Debug, Clone, PartialEq)]
pub struct Spo2Trend {
    /// Windowed SpO2 estimates in stream order.
    pub samples: Vec<Spo2Sample>,
    /// The separated pulsatile fetal estimate per wavelength,
    /// `[λ1, λ2]`, full recording length.
    pub fetal_estimates: [Vec<f64>; 2],
}

impl Spo2Trend {
    /// The modulation ratios of the trend, in stream order.
    pub fn ratios(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.ratio).collect()
    }

    /// The SpO2 values of the trend, in stream order.
    pub fn spo2(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.spo2).collect()
    }
}

/// Subtracts a per-sample one-pole DC estimate from `raw`, continuing
/// from `state` (use `None` at stream start). Returns the pulsatile
/// residual; `state` is updated so consecutive calls over a split stream
/// produce exactly the samples a single whole-stream call would.
pub fn ema_detrend(raw: &[f64], alpha: f64, state: &mut Option<f64>) -> Vec<f64> {
    let mut dc = state.unwrap_or_else(|| raw.first().copied().unwrap_or(0.0));
    let out = raw
        .iter()
        .map(|&x| {
            dc += alpha * (x - dc);
            x - dc
        })
        .collect();
    if !raw.is_empty() {
        *state = Some(dc);
    }
    out
}

/// Computes the windowed SpO2 trend directly from known pulsatile fetal
/// components and the raw channels — the oracle path, used to score what
/// a *perfect* separator would recover (and to fit calibrations against
/// ground truth).
///
/// # Errors
///
/// Returns [`OximetryError::ChannelLengthMismatch`] if any of the four
/// slices disagree in length.
pub fn spo2_trend_from_components(
    fetal: [&[f64]; 2],
    raw: [&[f64]; 2],
    cfg: &OximetryConfig,
) -> Result<Vec<Spo2Sample>, OximetryError> {
    if fetal[0].len() != fetal[1].len() || raw[0].len() != raw[1].len() {
        return Err(OximetryError::ChannelLengthMismatch {
            lambda1: fetal[0].len().min(raw[0].len()),
            lambda2: fetal[1].len().min(raw[1].len()),
        });
    }
    if fetal[0].len() != raw[0].len() {
        return Err(OximetryError::ChannelLengthMismatch {
            lambda1: fetal[0].len(),
            lambda2: raw[0].len(),
        });
    }
    let n = fetal[0].len();
    let mut samples = Vec::new();
    let mut start = 0usize;
    while start + cfg.trend_window <= n {
        samples.push(window_sample(fetal, raw, start, start, cfg));
        start += cfg.trend_hop;
    }
    Ok(samples)
}

/// One trend window: AC from the separated fetal estimates, DC from the
/// raw channels, ratio through the calibration. `off` is the buffer
/// offset of absolute position `start`.
fn window_sample(
    fetal: [&[f64]; 2],
    raw: [&[f64]; 2],
    start: usize,
    off: usize,
    cfg: &OximetryConfig,
) -> Spo2Sample {
    let win = cfg.trend_window;
    let ac = [ac_amplitude(&fetal[0][off..off + win]), ac_amplitude(&fetal[1][off..off + win])];
    let dc = [dc_level(&raw[0][off..off + win]), dc_level(&raw[1][off..off + win])];
    let ratio = modulation_ratio(ac[0], dc[0], ac[1], dc[1]);
    Spo2Sample { start, len: win, ratio, spo2: cfg.calibration.predict(ratio) }
}

/// Offline end-to-end pipeline: separates each wavelength channel with
/// the multi-round DHF pipeline (one shared [`RoundContext`], so λ2
/// reuses λ1's FFT plans), pairs the fetal estimates, and returns the
/// windowed SpO2 trend.
///
/// `mixed` holds the raw (DC-included) channels `[λ1, λ2]`; `f0_tracks`
/// the shared per-source fundamental tracks (both channels see one
/// physiology), with [`OximetryConfig::fetal_source`] naming the fetal
/// one.
///
/// # Errors
///
/// Returns [`OximetryError::ChannelLengthMismatch`] /
/// [`OximetryError::FetalSourceOutOfRange`] on inconsistent inputs, or a
/// wrapped [`DhfError`] if a separation fails.
pub fn estimate_spo2_trend(
    mixed: [&[f64]; 2],
    fs: f64,
    f0_tracks: &[Vec<f64>],
    dhf: &DhfConfig,
    cfg: &OximetryConfig,
) -> Result<Spo2Trend, OximetryError> {
    let mut ctx = RoundContext::new(dhf);
    ctx.set_collect_reports(false);
    estimate_spo2_trend_in(&mut ctx, mixed, fs, f0_tracks, cfg)
}

/// Like [`estimate_spo2_trend`], but running through a caller-owned
/// [`RoundContext`] so fleet-style callers (benches, batch scoring over
/// many recordings) keep one spectral workspace and FFT plan cache warm
/// across recordings, exactly as the λ2 channel already reuses λ1's
/// within one call.
///
/// # Errors
///
/// Same conditions as [`estimate_spo2_trend`].
pub fn estimate_spo2_trend_in(
    ctx: &mut RoundContext,
    mixed: [&[f64]; 2],
    fs: f64,
    f0_tracks: &[Vec<f64>],
    cfg: &OximetryConfig,
) -> Result<Spo2Trend, OximetryError> {
    if mixed[0].len() != mixed[1].len() {
        return Err(OximetryError::ChannelLengthMismatch {
            lambda1: mixed[0].len(),
            lambda2: mixed[1].len(),
        });
    }
    if cfg.fetal_source >= f0_tracks.len() {
        return Err(OximetryError::FetalSourceOutOfRange {
            fetal_source: cfg.fetal_source,
            n_sources: f0_tracks.len(),
        });
    }
    let alpha = cfg.dc_alpha(fs);
    let mut fetal_estimates: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for (li, channel) in mixed.iter().enumerate() {
        let pulsatile = ema_detrend(channel, alpha, &mut None);
        let mut result = ctx.separate(&pulsatile, fs, f0_tracks, 0)?;
        fetal_estimates[li] = std::mem::take(&mut result.sources[cfg.fetal_source]);
    }
    let samples =
        spo2_trend_from_components([&fetal_estimates[0], &fetal_estimates[1]], mixed, cfg)?;
    Ok(Spo2Trend { samples, fetal_estimates })
}

/// Result of [`StreamingOximeter::flush`].
#[derive(Debug, Clone, PartialEq)]
pub struct OximetryFlush {
    /// SpO2 windows completed by the flush, in stream order.
    pub samples: Vec<Spo2Sample>,
    /// Trailing stream samples the separators could not cover (too short
    /// for one analysis window) — no SpO2 window past them was emitted.
    pub dropped_samples: usize,
}

/// Online fetal oximetry with bounded latency.
///
/// Wraps two [`StreamingSeparator`]s — one per wavelength, sharing one
/// chunking configuration so their emission fronts advance in lockstep —
/// plus the per-channel DC trackers and the sliding trend window. Raw
/// sample-aligned packets go in via [`push`](Self::push); whenever both
/// channels' separated fetal streams cover the next trend window, the
/// window's [`Spo2Sample`] comes out. Worst-case output latency is one
/// analysis chunk plus one trend window
/// ([`max_latency_samples`](Self::max_latency_samples)).
///
/// ```
/// use dhf_core::DhfConfig;
/// use dhf_oximetry::{Calibration, OximetryConfig, StreamingOximeter};
/// use dhf_stream::StreamingConfig;
///
/// # fn main() -> Result<(), dhf_oximetry::OximetryError> {
/// let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast())
///     .map_err(dhf_oximetry::OximetryError::Stream)?;
/// let ocfg = OximetryConfig::new(1, 2000, 500, Calibration::default())?;
/// let mut oximeter = StreamingOximeter::new(100.0, 2, scfg, ocfg)?;
/// // Sample-aligned λ1/λ2 packets with the shared maternal + fetal f0.
/// let (l1, l2) = (vec![1.0; 100], vec![1.2; 100]);
/// let (f0_m, f0_f) = (vec![1.2; 100], vec![2.2; 100]);
/// let updates = oximeter.push([&l1, &l2], &[&f0_m, &f0_f])?;
/// assert!(updates.is_empty()); // far less than one chunk buffered so far
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingOximeter {
    cfg: OximetryConfig,
    /// Per-wavelength streaming separators, `[λ1, λ2]`.
    seps: [StreamingSeparator; 2],
    /// Per-wavelength one-pole DC tracker state.
    dc_state: [Option<f64>; 2],
    alpha: f64,
    /// Raw (DC-included) samples per wavelength from `buf_start`.
    raw: [Vec<f64>; 2],
    /// Separated fetal estimates per wavelength from `buf_start`.
    fetal: [Vec<f64>; 2],
    /// Absolute stream position of the buffers' first sample.
    buf_start: usize,
    /// Absolute position up to which each wavelength's fetal estimate has
    /// been emitted by its separator.
    fetal_end: [usize; 2],
    /// Absolute start of the next trend window.
    next_window: usize,
    /// SpO2 windows emitted so far.
    windows_emitted: u64,
}

impl StreamingOximeter {
    /// Opens an oximetry session for `n_sources` f0 tracks sampled at
    /// `fs` Hz, with [`OximetryConfig::fetal_source`] selecting the fetal
    /// track.
    ///
    /// # Errors
    ///
    /// Returns [`OximetryError::FetalSourceOutOfRange`] if the fetal
    /// index does not address a track, or a wrapped [`StreamError`] for
    /// invalid separator parameters.
    pub fn new(
        fs: f64,
        n_sources: usize,
        scfg: StreamingConfig,
        cfg: OximetryConfig,
    ) -> Result<Self, OximetryError> {
        if cfg.fetal_source >= n_sources {
            return Err(OximetryError::FetalSourceOutOfRange {
                fetal_source: cfg.fetal_source,
                n_sources,
            });
        }
        let alpha = cfg.dc_alpha(fs);
        let seps = [
            StreamingSeparator::new(fs, n_sources, scfg.clone())?,
            StreamingSeparator::new(fs, n_sources, scfg)?,
        ];
        Ok(StreamingOximeter {
            cfg,
            seps,
            dc_state: [None, None],
            alpha,
            raw: [Vec::new(), Vec::new()],
            fetal: [Vec::new(), Vec::new()],
            buf_start: 0,
            fetal_end: [0, 0],
            next_window: 0,
            windows_emitted: 0,
        })
    }

    /// The trend-extraction configuration.
    pub fn config(&self) -> &OximetryConfig {
        &self.cfg
    }

    /// Total stream samples ingested (per channel; after a mid-push
    /// chunk failure the channels can be offset by one packet, in which
    /// case this reports the shorter one).
    pub fn samples_ingested(&self) -> usize {
        self.seps[0].samples_ingested().min(self.seps[1].samples_ingested())
    }

    /// Absolute stream position up to which *both* wavelengths' fetal
    /// estimates have been separated — the trend window can only close
    /// behind this front.
    pub fn samples_separated(&self) -> usize {
        self.fetal_end[0].min(self.fetal_end[1])
    }

    /// SpO2 windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.windows_emitted
    }

    /// FFT plans built across both wavelength separators (constant after
    /// the first chunk of a steady stream).
    pub fn fft_plans_built(&self) -> usize {
        self.seps.iter().map(StreamingSeparator::fft_plans_built).sum()
    }

    /// Deep-prior fits resumed warm across both wavelength separators
    /// (zero unless the streaming configuration enables warm starting).
    pub fn warm_hits(&self) -> u64 {
        self.seps.iter().map(StreamingSeparator::warm_hits).sum()
    }

    /// Deep-prior fits trained from scratch across both wavelength
    /// separators.
    pub fn cold_fits(&self) -> u64 {
        self.seps.iter().map(StreamingSeparator::cold_fits).sum()
    }

    /// Sources currently holding resident warm nets, summed over both
    /// wavelength separators.
    pub fn warm_resident(&self) -> usize {
        self.seps.iter().map(StreamingSeparator::warm_resident).sum()
    }

    /// Worst-case samples between ingesting a sample and the SpO2 window
    /// containing it being emitted: one analysis chunk (separation
    /// latency) plus one trend window minus one hop (window-closing
    /// latency).
    pub fn max_latency_samples(&self) -> usize {
        self.seps[0].config().max_latency_samples() + self.cfg.trend_window - self.cfg.trend_hop
    }

    /// Rewinds the session to a fresh stream at position 0, keeping both
    /// separators' cached FFT plans hot (the serving-runtime reuse hook,
    /// mirroring [`StreamingSeparator::reset`]).
    pub fn reset(&mut self) {
        for sep in &mut self.seps {
            sep.reset();
        }
        self.dc_state = [None, None];
        for buf in self.raw.iter_mut().chain(self.fetal.iter_mut()) {
            buf.clear();
        }
        self.buf_start = 0;
        self.fetal_end = [0, 0];
        self.next_window = 0;
        self.windows_emitted = 0;
    }

    /// Ingests one sample-aligned packet of both wavelength channels plus
    /// the shared f0 tracks, returning every SpO2 window that became
    /// ready (zero or more).
    ///
    /// # Errors
    ///
    /// Returns [`OximetryError::ChannelLengthMismatch`] if the channels
    /// differ in length (nothing is buffered), or a wrapped
    /// [`StreamError`] from either separator. Separator-side validation
    /// runs before any buffering, so a rejected push leaves the session
    /// consistent; a chunk-separation failure is recoverable the same way
    /// it is for a bare [`StreamingSeparator`] (already-separated strides
    /// are retained and delivered by the next successful push or flush).
    pub fn push(
        &mut self,
        lambda: [&[f64]; 2],
        f0_tracks: &[&[f64]],
    ) -> Result<Vec<Spo2Sample>, OximetryError> {
        if lambda[0].len() != lambda[1].len() {
            return Err(OximetryError::ChannelLengthMismatch {
                lambda1: lambda[0].len(),
                lambda2: lambda[1].len(),
            });
        }
        for (li, &channel) in lambda.iter().enumerate() {
            // The DC tracker state must only advance if the separator
            // accepts the samples, so detrend into a scratch first and
            // commit the state after a successful push.
            let mut state = self.dc_state[li];
            let pulsatile = ema_detrend(channel, self.alpha, &mut state);
            let blocks = match self.seps[li].push(&pulsatile, f0_tracks) {
                Ok(blocks) => blocks,
                Err(e @ StreamError::Dhf(_)) => {
                    // A chunk-separation failure happens *after* the
                    // engine buffered the packet; keep the raw/DC books
                    // aligned with what the separator ingested. (The
                    // channels may now be offset by one packet — flush or
                    // [`reset`](Self::reset) before continuing.)
                    self.dc_state[li] = state;
                    self.raw[li].extend_from_slice(channel);
                    return Err(e.into());
                }
                // Validation errors buffer nothing anywhere.
                Err(e) => return Err(e.into()),
            };
            self.dc_state[li] = state;
            self.raw[li].extend_from_slice(channel);
            for b in blocks {
                debug_assert_eq!(b.start, self.fetal_end[li], "separator blocks are contiguous");
                self.fetal[li].extend_from_slice(&b.sources[self.cfg.fetal_source]);
                self.fetal_end[li] = b.start + b.len();
            }
        }
        Ok(self.emit_ready())
    }

    /// Ends the stream: flushes both separators and emits every SpO2
    /// window the final estimates complete.
    ///
    /// The session stays usable afterwards (the separators restart their
    /// stitching at the current position); if the flush could not cover a
    /// trailing remainder, pending windows that would span the gap are
    /// abandoned and the trend resumes at the live stream position.
    ///
    /// # Errors
    ///
    /// Propagates separator flush failures.
    pub fn flush(&mut self) -> Result<OximetryFlush, OximetryError> {
        let mut dropped = 0usize;
        for li in 0..2 {
            let fin = self.seps[li].flush()?;
            if let Some(b) = fin.block {
                debug_assert_eq!(b.start, self.fetal_end[li], "flush block is contiguous");
                self.fetal[li].extend_from_slice(&b.sources[self.cfg.fetal_source]);
                self.fetal_end[li] = b.start + b.len();
            }
            dropped = dropped.max(fin.dropped_samples);
        }
        let samples = self.emit_ready();
        if dropped > 0 {
            // The uncovered tail leaves a hole in the fetal estimates; a
            // window spanning it would mix live samples with the gap.
            // Restart the trend cleanly at the live position.
            let live = self.samples_ingested();
            self.next_window = live;
            self.fetal_end = [live, live];
            for li in 0..2 {
                self.fetal[li].clear();
                let keep = live.saturating_sub(self.buf_start).min(self.raw[li].len());
                self.raw[li].drain(..keep);
            }
            self.buf_start = live;
        }
        Ok(OximetryFlush { samples, dropped_samples: dropped })
    }

    /// Emits every trend window both separated streams now cover, then
    /// trims consumed buffer history.
    fn emit_ready(&mut self) -> Vec<Spo2Sample> {
        let mut out = Vec::new();
        let covered = self.samples_separated();
        while self.next_window + self.cfg.trend_window <= covered {
            let off = self.next_window - self.buf_start;
            out.push(window_sample(
                [&self.fetal[0], &self.fetal[1]],
                [&self.raw[0], &self.raw[1]],
                self.next_window,
                off,
                &self.cfg,
            ));
            self.next_window += self.cfg.trend_hop;
        }
        self.windows_emitted += out.len() as u64;
        // History below the next window start is never read again.
        let keep_from = self.next_window.saturating_sub(self.buf_start);
        if keep_from > 0 {
            for li in 0..2 {
                self.raw[li].drain(..keep_from.min(self.raw[li].len()));
                self.fetal[li].drain(..keep_from.min(self.fetal[li].len()));
            }
            self.buf_start = self.next_window;
        }
        out
    }
}

// Oximetry sessions are owned by serving-runtime worker threads, exactly
// like plain separation sessions.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StreamingOximeter>();
    assert_send::<OximetryConfig>();
    assert_send::<Spo2Sample>();
    assert_send::<OximetryError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_dsp::stats::mean;
    use dhf_synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};
    use dhf_synth::invivo::{CALIBRATION_K, CALIBRATION_W0, CALIBRATION_W1};

    fn forward_calibration() -> Calibration {
        Calibration { w0: CALIBRATION_W0, w1: CALIBRATION_W1, k: CALIBRATION_K }
    }

    #[test]
    fn config_validates_parameters() {
        let cal = Calibration::default();
        assert!(matches!(
            OximetryConfig::new(1, 0, 1, cal),
            Err(OximetryError::Config { name: "trend_window", .. })
        ));
        assert!(matches!(
            OximetryConfig::new(1, 100, 0, cal),
            Err(OximetryError::Config { name: "trend_hop", .. })
        ));
        assert!(matches!(
            OximetryConfig::new(1, 100, 101, cal),
            Err(OximetryError::Config { name: "trend_hop", .. })
        ));
        let cfg = OximetryConfig::new(1, 100, 50, cal).unwrap();
        assert!(cfg.with_dc_time_constant(0.0).is_err());
    }

    #[test]
    fn ema_detrend_is_split_invariant_and_removes_dc() {
        let raw: Vec<f64> =
            (0..2000).map(|i| 5.0 + 0.001 * i as f64 + 0.3 * (i as f64 * 0.13).sin()).collect();
        let alpha = 0.005;
        let whole = ema_detrend(&raw, alpha, &mut None);
        // Split into uneven pieces with carried state.
        let mut state = None;
        let mut pieces = Vec::new();
        for chunk in [300usize, 7, 693, 1000].iter().scan(0usize, |lo, &n| {
            let r = *lo..*lo + n;
            *lo += n;
            Some(r)
        }) {
            pieces.extend(ema_detrend(&raw[chunk], alpha, &mut state));
        }
        assert_eq!(whole, pieces, "detrending must not depend on push granularity");
        // The 5.0 static offset is gone after convergence; what remains is
        // the one-pole tracker's steady-state ramp lag, slope/alpha = 0.2.
        let tail_mean = mean(&whole[1000..]);
        assert!((tail_mean - 0.2).abs() < 0.05, "residual {tail_mean} should be the ramp lag");
    }

    #[test]
    fn oracle_trend_tracks_a_desaturation_event() {
        // Ground-truth fetal components through the windowing stage only:
        // validates the trend math end to end without separation cost.
        let rec = generate(&DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 120.0));
        let fs = rec.config.fs;
        let cfg = OximetryConfig::new(
            1,
            (20.0 * fs) as usize,
            (5.0 * fs) as usize,
            forward_calibration(),
        )
        .unwrap();
        let trend = spo2_trend_from_components(
            [&rec.fetal_truth[0], &rec.fetal_truth[1]],
            [&rec.mixed[0], &rec.mixed[1]],
            &cfg,
        )
        .unwrap();
        assert!(trend.len() > 10, "expected a dense trend, got {}", trend.len());
        let mut errs = Vec::new();
        for s in &trend {
            let truth = mean(&rec.sao2[s.start..s.start + s.len]);
            errs.push((s.spo2 - truth).abs());
        }
        let mean_err = mean(&errs);
        assert!(mean_err < 0.03, "oracle mean |SpO2 err| {mean_err:.4}");
        // The event is visible: the trend minimum sits near the nadir.
        let min = trend.iter().map(|s| s.spo2).fold(f64::INFINITY, f64::min);
        assert!((min - 0.35).abs() < 0.06, "trend nadir {min:.3}");
    }

    #[test]
    fn offline_pipeline_rejects_inconsistent_inputs() {
        let cal = Calibration::default();
        let cfg = OximetryConfig::new(2, 100, 50, cal).unwrap();
        let a = vec![0.0; 200];
        let b = vec![0.0; 199];
        let tracks = vec![vec![1.3; 200], vec![2.2; 200]];
        assert!(matches!(
            estimate_spo2_trend([&a, &b], 100.0, &tracks, &DhfConfig::fast(), &cfg),
            Err(OximetryError::ChannelLengthMismatch { lambda1: 200, lambda2: 199 })
        ));
        // fetal_source = 2 does not address one of the two tracks.
        assert!(matches!(
            estimate_spo2_trend([&a, &a], 100.0, &tracks, &DhfConfig::fast(), &cfg),
            Err(OximetryError::FetalSourceOutOfRange { fetal_source: 2, n_sources: 2 })
        ));
    }

    #[test]
    fn streaming_oximeter_validates_inputs() {
        let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast()).unwrap();
        let ocfg = OximetryConfig::new(3, 2000, 500, Calibration::default()).unwrap();
        assert!(matches!(
            StreamingOximeter::new(100.0, 2, scfg.clone(), ocfg),
            Err(OximetryError::FetalSourceOutOfRange { fetal_source: 3, n_sources: 2 })
        ));

        let ocfg = OximetryConfig::new(1, 2000, 500, Calibration::default()).unwrap();
        let mut ox = StreamingOximeter::new(100.0, 2, scfg, ocfg).unwrap();
        let (l1, l2) = (vec![1.0; 100], vec![1.2; 99]);
        let t = vec![1.3; 100];
        assert!(matches!(
            ox.push([&l1, &l2], &[&t, &t]),
            Err(OximetryError::ChannelLengthMismatch { lambda1: 100, lambda2: 99 })
        ));
        // A rejected push buffers nothing on either channel.
        assert_eq!(ox.samples_ingested(), 0);
        // A track-validation failure from the separators also buffers
        // nothing (λ1 is validated before λ2 is touched).
        let l2 = vec![1.2; 100];
        let bad = vec![-1.0; 100];
        assert!(matches!(ox.push([&l1, &l2], &[&t, &bad]), Err(OximetryError::Stream(_))));
        assert_eq!(ox.samples_ingested(), 0);
    }

    #[test]
    fn streaming_emits_windows_with_bounded_latency() {
        // Cheap end-to-end sanity at unit scale: a short recording with
        // the deterministic in-painter; the workspace-level e2e test
        // bounds accuracy, this one checks cadence and accounting.
        let rec =
            generate(&DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.5 }, 90.0).with_seed(7));
        let fs = rec.config.fs;
        let n = rec.len();
        let scfg =
            StreamingConfig::new(3000, 600, DhfConfig::fast().with_harmonic_interp()).unwrap();
        let ocfg = OximetryConfig::new(
            1,
            (20.0 * fs) as usize,
            (10.0 * fs) as usize,
            forward_calibration(),
        )
        .unwrap();
        let mut ox = StreamingOximeter::new(fs, 2, scfg, ocfg).unwrap();
        let max_latency = ox.max_latency_samples();

        let mut got = Vec::new();
        for lo in (0..n).step_by(500) {
            let hi = (lo + 500).min(n);
            let tracks: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
            let updates = ox.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &tracks).unwrap();
            for s in &updates {
                assert_eq!(
                    s.start,
                    got.len() * ox.config().trend_hop,
                    "windows must arrive in order at the configured hop"
                );
                got.push(*s);
            }
            // Latency bound: every window fully older than one chunk +
            // one trend window has been emitted.
            let emitted_through = got.len() * ox.config().trend_hop;
            assert!(
                emitted_through + max_latency + ox.config().trend_hop > hi,
                "window latency exceeded at {hi}: emitted through {emitted_through}"
            );
        }
        let fin = ox.flush().unwrap();
        assert_eq!(fin.dropped_samples, 0);
        got.extend(fin.samples);
        // Every completable window came out.
        let expected = (n - ox.config().trend_window) / ox.config().trend_hop + 1;
        assert_eq!(got.len(), expected);
        assert_eq!(ox.windows_emitted(), expected as u64);
        assert!(got.iter().all(|s| s.spo2.is_finite() && s.ratio.is_finite()));
        // The harmonic-interp bypass never touches the deep prior, so the
        // warm/cold fit books stay empty.
        assert_eq!(ox.warm_hits() + ox.cold_fits(), 0);
        assert_eq!(ox.warm_resident(), 0);
    }

    #[test]
    fn streaming_is_invariant_to_push_granularity() {
        let rec = generate(
            &DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.55 }, 70.0).with_seed(3),
        );
        let fs = rec.config.fs;
        let n = rec.len();
        let scfg =
            StreamingConfig::new(3000, 400, DhfConfig::fast().with_harmonic_interp()).unwrap();
        let ocfg = OximetryConfig::new(
            1,
            (15.0 * fs) as usize,
            (5.0 * fs) as usize,
            forward_calibration(),
        )
        .unwrap();

        let run = |pieces: &[usize]| {
            let mut ox = StreamingOximeter::new(fs, 2, scfg.clone(), ocfg.clone()).unwrap();
            let mut got = Vec::new();
            let mut lo = 0usize;
            for &piece in pieces.iter().cycle() {
                if lo >= n {
                    break;
                }
                let hi = (lo + piece).min(n);
                let tracks: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
                got.extend(
                    ox.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &tracks).unwrap(),
                );
                lo = hi;
            }
            got.extend(ox.flush().unwrap().samples);
            got
        };
        let a = run(&[n]);
        let b = run(&[333, 1000, 77, 2590]);
        assert_eq!(a, b, "trend must not depend on push granularity");
    }
}
