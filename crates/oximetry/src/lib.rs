//! Pulse-oximetry SpO2 estimation from dual-wavelength PPG (paper §4.3,
//! Eqs. 10–11, following Vali et al. \[18\]).
//!
//! The modulation ratio
//! `R = (AC/DC)_λ1 / (AC/DC)_λ2`
//! relates to arterial saturation through the inverse-linear calibration
//! `1/(SaO2 + k) = w0 + w1·R` with `k = 1.885`; `w0, w1` are learned by
//! least squares against blood-draw ground truth.
//!
//! The calibration primitives live at the crate root; [`pipeline`] builds
//! the full workload on top of them — dual-wavelength mixture →
//! per-wavelength DHF separation → windowed modulation ratios → an SpO2
//! *trend*, offline ([`estimate_spo2_trend`]) or online with bounded
//! latency ([`StreamingOximeter`]).
//!
//! # Example
//!
//! ```
//! use dhf_oximetry::{ac_amplitude, modulation_ratio, Calibration};
//!
//! // Two synthetic pulsatile channels.
//! let ch1: Vec<f64> = (0..500).map(|i| 1.0 + 0.03 * (i as f64 * 0.13).sin()).collect();
//! let ch2: Vec<f64> = (0..500).map(|i| 1.2 + 0.024 * (i as f64 * 0.13).sin()).collect();
//! let r = modulation_ratio(
//!     ac_amplitude(&ch1), 1.0,
//!     ac_amplitude(&ch2), 1.2,
//! );
//! assert!((r - 1.5).abs() < 0.05);
//! # let _ = Calibration::default();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;

pub use pipeline::{
    ema_detrend, estimate_spo2_trend, estimate_spo2_trend_in, spo2_trend_from_components,
    OximetryConfig, OximetryError, OximetryFlush, Spo2Sample, Spo2Trend, StreamingOximeter,
};

use dhf_dsp::filter::detrend;
use dhf_dsp::stats::{linear_fit, mean, pearson, rms};

/// The paper's regularizing constant in Eq. 10.
pub const DEFAULT_K: f64 = 1.885;

/// Pulsatile (AC) amplitude of a PPG segment: RMS of the detrended signal
/// scaled by `2√2` (the peak-to-peak value of an equivalent sinusoid).
///
/// Any consistent amplitude functional cancels in the modulation *ratio*;
/// RMS is used for robustness to waveform shape.
pub fn ac_amplitude(segment: &[f64]) -> f64 {
    if segment.len() < 2 {
        return 0.0;
    }
    2.0 * std::f64::consts::SQRT_2 * rms(&detrend(segment))
}

/// Static (DC) level of a PPG segment: its mean.
pub fn dc_level(segment: &[f64]) -> f64 {
    mean(segment)
}

/// Modulation ratio `R = (AC₁/DC₁)/(AC₂/DC₂)` (Eq. 11).
///
/// Returns 0 when the second channel carries no pulsation.
pub fn modulation_ratio(ac1: f64, dc1: f64, ac2: f64, dc2: f64) -> f64 {
    let m1 = if dc1.abs() < f64::EPSILON { 0.0 } else { ac1 / dc1 };
    let m2 = if dc2.abs() < f64::EPSILON { 0.0 } else { ac2 / dc2 };
    if m2.abs() < f64::EPSILON {
        0.0
    } else {
        m1 / m2
    }
}

/// Learned SaO2 calibration `1/(SaO2 + k) = w0 + w1·R` (Eq. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Intercept.
    pub w0: f64,
    /// Slope.
    pub w1: f64,
    /// Regularizing constant (1.885 in the paper).
    pub k: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration { w0: 0.0, w1: 0.0, k: DEFAULT_K }
    }
}

impl Calibration {
    /// Least-squares fit of `(R, SaO2)` pairs with the default `k`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn fit(r_values: &[f64], sao2: &[f64]) -> Self {
        Self::fit_with_k(r_values, sao2, DEFAULT_K)
    }

    /// Least-squares fit with an explicit `k`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn fit_with_k(r_values: &[f64], sao2: &[f64], k: f64) -> Self {
        assert_eq!(r_values.len(), sao2.len(), "fit requires paired samples");
        let y: Vec<f64> = sao2.iter().map(|&s| 1.0 / (s + k)).collect();
        let (w0, w1) = linear_fit(r_values, &y);
        Calibration { w0, w1, k }
    }

    /// Predicted SpO2 for a modulation ratio.
    pub fn predict(&self, r: f64) -> f64 {
        let denom = self.w0 + self.w1 * r;
        if denom.abs() < f64::EPSILON {
            0.0
        } else {
            1.0 / denom - self.k
        }
    }

    /// Predicts SpO2 for each ratio in the slice.
    pub fn predict_many(&self, r_values: &[f64]) -> Vec<f64> {
        r_values.iter().map(|&r| self.predict(r)).collect()
    }
}

/// Leave-nothing-out evaluation used by Figure 6: fit the calibration on
/// all draws, predict SpO2 from the ratios, and report the Pearson
/// correlation against the SaO2 ground truth.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn spo2_correlation(r_values: &[f64], sao2: &[f64]) -> f64 {
    let cal = Calibration::fit(r_values, sao2);
    let pred = cal.predict_many(r_values);
    pearson(&pred, sao2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ac_amplitude_of_pure_sine() {
        let x: Vec<f64> = (0..1000)
            .map(|i| 5.0 + 0.5 * (std::f64::consts::TAU * i as f64 / 50.0).sin())
            .collect();
        // Peak-to-peak of a 0.5-amplitude sine is 1.0.
        assert!((ac_amplitude(&x) - 1.0).abs() < 0.02);
        assert!((dc_level(&x) - 5.0).abs() < 0.01);
    }

    #[test]
    fn ac_amplitude_ignores_linear_drift() {
        let x: Vec<f64> = (0..1000)
            .map(|i| 0.01 * i as f64 + 0.5 * (std::f64::consts::TAU * i as f64 / 50.0).sin())
            .collect();
        assert!((ac_amplitude(&x) - 1.0).abs() < 0.05);
    }

    #[test]
    fn modulation_ratio_cancels_common_scale() {
        let r = modulation_ratio(0.03, 1.0, 0.02, 1.0);
        assert!((r - 1.5).abs() < 1e-12);
        // Scaling both channels' DC identically keeps R.
        let r2 = modulation_ratio(0.06, 2.0, 0.04, 2.0);
        assert!((r - r2).abs() < 1e-12);
    }

    #[test]
    fn modulation_ratio_degenerate_inputs() {
        assert_eq!(modulation_ratio(0.1, 0.0, 0.1, 1.0), 0.0);
        assert_eq!(modulation_ratio(0.1, 1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn calibration_recovers_forward_model() {
        // Generate (R, SaO2) pairs from a known w0/w1.
        let w0 = 0.5;
        let w1 = -0.05;
        let rs: Vec<f64> = (0..20).map(|i| 0.8 + 0.05 * i as f64).collect();
        let sao2: Vec<f64> = rs.iter().map(|&r| 1.0 / (w0 + w1 * r) - DEFAULT_K).collect();
        let cal = Calibration::fit(&rs, &sao2);
        assert!((cal.w0 - w0).abs() < 1e-9, "w0 {}", cal.w0);
        assert!((cal.w1 - w1).abs() < 1e-9, "w1 {}", cal.w1);
        for (&r, &s) in rs.iter().zip(&sao2) {
            assert!((cal.predict(r) - s).abs() < 1e-9);
        }
    }

    #[test]
    fn clean_ratios_give_perfect_correlation() {
        let w0 = 0.48;
        let w1 = -0.04;
        let rs: Vec<f64> = (0..10).map(|i| 1.0 + 0.1 * i as f64).collect();
        let sao2: Vec<f64> = rs.iter().map(|&r| 1.0 / (w0 + w1 * r) - DEFAULT_K).collect();
        assert!(spo2_correlation(&rs, &sao2) > 0.999);
    }

    #[test]
    fn noisy_ratios_degrade_correlation() {
        let w0 = 0.48;
        let w1 = -0.04;
        let rs: Vec<f64> = (0..10).map(|i| 1.0 + 0.1 * i as f64).collect();
        let sao2: Vec<f64> = rs.iter().map(|&r| 1.0 / (w0 + w1 * r) - DEFAULT_K).collect();
        // Heavy multiplicative corruption of the ratios (interference).
        let corrupted: Vec<f64> = rs
            .iter()
            .enumerate()
            .map(|(i, &r)| r * (1.0 + 0.45 * if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let clean = spo2_correlation(&rs, &sao2);
        let noisy = spo2_correlation(&corrupted, &sao2);
        assert!(clean > noisy + 0.2, "clean {clean} vs noisy {noisy}");
    }

    #[test]
    fn predict_handles_degenerate_calibration() {
        let cal = Calibration::default();
        assert_eq!(cal.predict(1.0), 0.0);
    }
}
