//! Zero-dependency stage tracing and profiling for the DHF pipeline.
//!
//! Answers "where does a separation round spend its time" at every layer
//! of the stack — from [`Stage::StftAnalysis`] inside `dhf_dsp` up to
//! [`Stage::BatchRun`] in `dhf_serve` — without dragging a tracing
//! framework into the dependency graph. The design budget is strict:
//!
//! - **std-only**: the one dependency is `dhf_metrics`, for the
//!   geometric-bucket [`LatencyHistogram`](dhf_metrics::LatencyHistogram)
//!   that backs per-stage aggregation.
//! - **Allocation-light**: a [`span`] records one `(stage, nanos)` event
//!   into a bounded thread-local ring; nothing is formatted, boxed, or
//!   sent anywhere on the hot path. Aggregation happens when an owner
//!   (a serve worker, a bench harness) drains its thread's ring into a
//!   [`StageBreakdown`].
//! - **Runtime-gated by one relaxed atomic**: with tracing disabled
//!   (the default) a span is a single relaxed load and a branch —
//!   measured well under 1% of pipeline throughput. The `obs-off` cargo
//!   feature pins [`enabled`] to a constant `false` so the optimizer
//!   deletes even the branch.
//!
//! ```
//! use dhf_obs::{self as obs, Stage, StageBreakdown};
//!
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span(Stage::MaskBuild); // records on drop
//! }
//! obs::record(Stage::QueueWait, 1.5e-3); // pre-measured duration
//!
//! let mut breakdown = StageBreakdown::new();
//! obs::drain_thread_into(&mut breakdown);
//! obs::set_enabled(false);
//! assert_eq!(breakdown.stage(Stage::QueueWait).count(), 1);
//! ```

mod breakdown;
mod gauge;
mod prom;
mod span;
mod stage;

pub use breakdown::StageBreakdown;
pub use gauge::HighWatermark;
pub use prom::PromText;
pub use span::{drain_thread_into, pending_events, record, span, SpanGuard};
pub use stage::Stage;

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide tracing gate. Off by default: separation runs pay one
/// relaxed load + branch per span site until someone opts in.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently enabled.
///
/// A constant `false` under the `obs-off` feature (the load is never
/// executed), otherwise one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    !cfg!(feature = "obs-off") && ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide.
///
/// Takes effect on the next span site each thread passes (relaxed
/// ordering — a span already in flight on another thread may still
/// record). A no-op under the `obs-off` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
