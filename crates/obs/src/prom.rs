//! Prometheus text-exposition writer.

use crate::breakdown::StageBreakdown;
use dhf_metrics::LatencyHistogram;
use std::fmt::Write as _;

/// Builds a Prometheus text-format exposition (version 0.0.4) — the
/// `# HELP`/`# TYPE`/sample-line format every Prometheus-compatible
/// scraper accepts.
///
/// Histograms are exported as summaries (pre-computed quantiles plus
/// `_sum`/`_count`) rather than cumulative buckets: the geometric-bucket
/// layout already bakes in the resolution, and quantile lines keep the
/// exposition small enough to assemble per scrape with one `String`.
///
/// ```
/// use dhf_obs::PromText;
///
/// let mut prom = PromText::new();
/// prom.help("dhf_open_sessions", "Open sessions per shard", "gauge");
/// prom.sample("dhf_open_sessions", &[("shard", "0")], 16.0);
/// let text = prom.render();
/// assert!(text.contains("dhf_open_sessions{shard=\"0\"} 16"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        PromText { out: String::new() }
    }

    /// Emits the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is the Prometheus type: `counter`, `gauge`, or `summary`.
    pub fn help(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line: `name{labels} value`. Integral values are
    /// written without a decimal point.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.write_labels(labels, &[]);
        if value.fract() == 0.0 && value.abs() < 1e15 {
            let _ = writeln!(self.out, " {}", value as i64);
        } else {
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// Emits a histogram as a Prometheus summary: `quantile`-labelled
    /// lines for p50/p90/p95/p99, then `name_sum` and `name_count`.
    /// Extra labels (e.g. `stage="nn_fit"`) apply to every line.
    pub fn summary(&mut self, name: &str, labels: &[(&str, &str)], hist: &LatencyHistogram) {
        for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.95", 95.0), ("0.99", 99.0)] {
            if let Some(v) = hist.percentile(p) {
                self.out.push_str(name);
                self.write_labels(labels, &[("quantile", q)]);
                let _ = writeln!(self.out, " {v}");
            }
        }
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.write_labels(labels, &[]);
        let _ = writeln!(self.out, " {}", hist.sum());
        self.out.push_str(name);
        self.out.push_str("_count");
        self.write_labels(labels, &[]);
        let _ = writeln!(self.out, " {}", hist.count());
    }

    /// Emits a whole [`StageBreakdown`] as one summary family with a
    /// `stage` label per non-empty stage (plus any shared labels).
    pub fn stage_summaries(&mut self, name: &str, labels: &[(&str, &str)], b: &StageBreakdown) {
        for (stage, hist) in b.iter_nonempty() {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("stage", stage.name()));
            self.summary(name, &all, hist);
        }
    }

    /// Consumes the builder and returns the exposition text.
    pub fn render(self) -> String {
        self.out
    }

    fn write_labels(&mut self, labels: &[(&str, &str)], extra: &[(&str, &str)]) {
        if labels.is_empty() && extra.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (k, v)) in labels.iter().chain(extra).enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            // Minimal escaping: our label values are shard indices and
            // stage names, but quotes/backslashes must never corrupt the
            // exposition.
            let _ = write!(self.out, "{k}=\"");
            for c in v.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    _ => self.out.push(c),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    #[test]
    fn counter_and_gauge_lines_are_well_formed() {
        let mut prom = PromText::new();
        prom.help("dhf_packets_total", "Packets processed", "counter");
        prom.sample("dhf_packets_total", &[("shard", "2")], 1234.0);
        prom.sample("dhf_queue_depth", &[], 0.5);
        let text = prom.render();
        assert!(text.contains("# HELP dhf_packets_total Packets processed"));
        assert!(text.contains("# TYPE dhf_packets_total counter"));
        assert!(text.contains("dhf_packets_total{shard=\"2\"} 1234"));
        assert!(text.contains("dhf_queue_depth 0.5"));
    }

    #[test]
    fn summary_emits_quantiles_sum_and_count() {
        let mut h = LatencyHistogram::for_serving();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let mut prom = PromText::new();
        prom.summary("dhf_latency_seconds", &[], &h);
        let text = prom.render();
        assert!(text.contains("dhf_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("dhf_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("dhf_latency_seconds_count 100"));
        assert!(text.contains("dhf_latency_seconds_sum "));
    }

    #[test]
    fn empty_summary_still_reports_zero_count() {
        let h = LatencyHistogram::for_serving();
        let mut prom = PromText::new();
        prom.summary("dhf_latency_seconds", &[("shard", "0")], &h);
        let text = prom.render();
        assert!(!text.contains("quantile"));
        assert!(text.contains("dhf_latency_seconds_count{shard=\"0\"} 0"));
    }

    #[test]
    fn stage_summaries_label_each_stage() {
        let mut b = StageBreakdown::new();
        b.record(Stage::NnFit, 2e-3);
        b.record(Stage::Istft, 1e-4);
        let mut prom = PromText::new();
        prom.stage_summaries("dhf_stage_seconds", &[], &b);
        let text = prom.render();
        assert!(text.contains("dhf_stage_seconds{stage=\"nn_fit\",quantile=\"0.5\"}"));
        assert!(text.contains("dhf_stage_seconds_count{stage=\"istft\"} 1"));
        assert!(!text.contains("mask_build"), "empty stages are omitted");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut prom = PromText::new();
        prom.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(prom.render(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
