//! Per-stage latency aggregation.

use crate::stage::Stage;
use dhf_metrics::LatencyHistogram;
use std::fmt;

/// Fixed layout for stage histograms: 10 ns to 10 s in 144 geometric
/// buckets (≈15% relative resolution). Wider at the bottom than the
/// serving layout because disabled-span and kernel-level stages sit in
/// the nanosecond range.
fn stage_layout() -> LatencyHistogram {
    LatencyHistogram::new(1e-8, 10.0, 144)
}

/// One [`LatencyHistogram`] per [`Stage`]: the aggregated view of drained
/// span events.
///
/// Owners are single-threaded aggregators (a serve worker drains its
/// ring into the shard's breakdown under the shard counter lock; a bench
/// harness drains inline). Breakdowns merge per-stage — same fixed
/// layout everywhere — so shard breakdowns roll up into one fleet view
/// exactly like serving latency histograms do.
///
/// `Display` renders a right-aligned table of the non-empty stages
/// (count, mean, p50, p95, max), which is what `Telemetry` and
/// `examples/observe.rs` print.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    hists: Vec<LatencyHistogram>,
    dropped: u64,
}

impl StageBreakdown {
    /// An empty breakdown with one fixed-layout histogram per stage.
    pub fn new() -> Self {
        StageBreakdown { hists: (0..Stage::COUNT).map(|_| stage_layout()).collect(), dropped: 0 }
    }

    /// Records one duration (seconds) for `stage`.
    pub fn record(&mut self, stage: Stage, secs: f64) {
        self.hists[stage.index()].record(secs);
    }

    /// The aggregated histogram for one stage (possibly empty).
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.hists[stage.index()]
    }

    /// Adds every sample of `other` into `self`, stage by stage.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (dst, src) in self.hists.iter_mut().zip(&other.hists) {
            dst.merge(src);
        }
        self.dropped += other.dropped;
    }

    /// Iterates the stages that have at least one sample, in pipeline
    /// order.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (Stage, &LatencyHistogram)> {
        Stage::ALL.iter().map(|&s| (s, self.stage(s))).filter(|(_, h)| h.count() > 0)
    }

    /// Total samples across all stages.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(|h| h.count()).sum()
    }

    /// `true` when no stage has recorded a sample.
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Events lost to ring overflow between drains (a profiling gap, not
    /// a data error).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Adds to the overflow tally (called by the ring drain).
    pub(crate) fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }
}

impl Default for StageBreakdown {
    fn default() -> Self {
        StageBreakdown::new()
    }
}

/// Formats a duration in seconds with an adaptive unit, e.g. `840 ns`,
/// `1.35 ms`, `2.10 s`.
pub(crate) fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.0} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

impl fmt::Display for StageBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>14} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "mean", "p50", "p95", "max"
        )?;
        for (stage, h) in self.iter_nonempty() {
            writeln!(
                f,
                "{:>14} {:>10} {:>10} {:>10} {:>10} {:>10}",
                stage.name(),
                h.count(),
                fmt_duration(h.mean().unwrap_or(0.0)),
                fmt_duration(h.percentile(50.0).unwrap_or(0.0)),
                fmt_duration(h.percentile(95.0).unwrap_or(0.0)),
                fmt_duration(h.max().unwrap_or(0.0)),
            )?;
        }
        if self.dropped > 0 {
            writeln!(f, "{:>14} {:>10}", "(dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_breakdown_has_no_rows() {
        let b = StageBreakdown::new();
        assert!(b.is_empty());
        assert_eq!(b.total_count(), 0);
        assert_eq!(b.iter_nonempty().count(), 0);
        // Header only.
        assert_eq!(b.to_string().lines().count(), 1);
    }

    #[test]
    fn merge_rolls_up_stage_by_stage() {
        let mut shard0 = StageBreakdown::new();
        let mut shard1 = StageBreakdown::new();
        shard0.record(Stage::NnFit, 2e-3);
        shard0.record(Stage::StftAnalysis, 40e-6);
        shard1.record(Stage::NnFit, 4e-3);
        shard1.add_dropped(3);

        let mut fleet = StageBreakdown::new();
        fleet.merge(&shard0);
        fleet.merge(&shard1);
        assert_eq!(fleet.stage(Stage::NnFit).count(), 2);
        assert_eq!(fleet.stage(Stage::StftAnalysis).count(), 1);
        assert_eq!(fleet.total_count(), 3);
        assert_eq!(fleet.dropped_events(), 3);
        let mean = fleet.stage(Stage::NnFit).mean().unwrap();
        assert!((mean - 3e-3).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn display_lists_nonempty_stages_in_pipeline_order() {
        let mut b = StageBreakdown::new();
        b.record(Stage::Istft, 1e-4);
        b.record(Stage::StftAnalysis, 1e-4);
        let table = b.to_string();
        let stft = table.find("stft_analysis").unwrap();
        let istft = table.find(" istft").unwrap();
        assert!(stft < istft, "pipeline order:\n{table}");
        assert!(table.contains("count"), "header:\n{table}");
    }

    #[test]
    fn fmt_duration_picks_sane_units() {
        assert_eq!(fmt_duration(8.4e-7), "840 ns");
        assert_eq!(fmt_duration(1.35e-3), "1.35 ms");
        assert_eq!(fmt_duration(2.5e-5), "25.00 us");
        assert_eq!(fmt_duration(2.1), "2.10 s");
    }
}
