//! Lock-free gauges for queue-depth and batch-occupancy tracking.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone high-watermark gauge: remembers the largest value ever
/// observed, updated lock-free from any thread.
///
/// Used for queue depth (worst backlog any session reached) and batch
/// occupancy (largest packet/session batch a worker drained in one
/// wakeup) — the numbers that size admission-control and batching
/// decisions, which averages hide.
///
/// ```
/// use dhf_obs::HighWatermark;
///
/// let hwm = HighWatermark::new();
/// hwm.observe(3);
/// hwm.observe(9);
/// hwm.observe(5);
/// assert_eq!(hwm.get(), 9);
/// ```
#[derive(Debug, Default)]
pub struct HighWatermark(AtomicU64);

impl HighWatermark {
    /// A gauge that has observed nothing (watermark 0).
    pub fn new() -> Self {
        HighWatermark(AtomicU64::new(0))
    }

    /// Raises the watermark to `value` if it is the largest seen so far.
    /// One relaxed `fetch_max`; safe on any hot path.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The largest value observed so far (0 if none).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_monotone() {
        let hwm = HighWatermark::new();
        assert_eq!(hwm.get(), 0);
        hwm.observe(7);
        hwm.observe(2);
        assert_eq!(hwm.get(), 7);
        hwm.observe(11);
        assert_eq!(hwm.get(), 11);
    }

    #[test]
    fn watermark_survives_concurrent_observers() {
        let hwm = std::sync::Arc::new(HighWatermark::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let hwm = hwm.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        hwm.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hwm.get(), 3999);
    }
}
