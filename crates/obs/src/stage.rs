//! The span taxonomy: one variant per instrumented pipeline stage.

use std::fmt;

/// An instrumented stage of the separation/serving pipeline.
///
/// The taxonomy is deliberately flat and closed: a `u8`-sized enum keeps
/// events `Copy` and lets [`StageBreakdown`](crate::StageBreakdown)
/// index histograms by `stage as usize` with no hashing. To add a stage,
/// add a variant, extend [`Stage::ALL`] and [`Stage::name`], and drop a
/// [`span`](crate::span) at the call site — everything downstream
/// (aggregation, `Display` tables, both exporters) picks it up from
/// `ALL`.
///
/// Stages nest (a `ChunkAdvance` contains `StftAnalysis` etc.; an
/// `EngineRun` contains a `ChunkAdvance`), and each span records its
/// *inclusive* wall time, so parent stages are upper bounds on the sum
/// of their children, not disjoint partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// `core::pipeline` — validating fundamental-frequency track inputs.
    TrackValidate = 0,
    /// `dhf_dsp` — forward STFT analysis of one signal.
    StftAnalysis,
    /// `core::pipeline` — rebuilding the significance mask from
    /// harmonic ratios.
    MaskBuild,
    /// `core::pipeline` — the per-round deep-prior fit (magnitude
    /// inpainting), the dominant full-config cost.
    NnFit,
    /// `core::pipeline` — applying the mask: hidden-cell
    /// reconstruction, phase restoration, comb scaling.
    MaskApply,
    /// `dhf_dsp` — inverse STFT and windowed overlap-add.
    Istft,
    /// `dhf_stream` — the optional HPSS transient-rejection front
    /// filter applied to a chunk before separation.
    HpssFilter,
    /// `dhf_stream` — one steady-state chunk advance (separate +
    /// stitch).
    ChunkAdvance,
    /// `dhf_stream` — the final partial-chunk flush.
    ChunkFlush,
    /// `dhf_serve` — time a packet sat queued before a worker picked
    /// it up.
    QueueWait,
    /// `dhf_serve` — one session's engine run over a batch of packets.
    EngineRun,
    /// `dhf_serve` — one worker wakeup processing its whole drained
    /// batch.
    BatchRun,
}

impl Stage {
    /// Number of stages in the taxonomy.
    pub const COUNT: usize = 12;

    /// Every stage, in pipeline order. Indexing invariant:
    /// `Stage::ALL[s as usize] == s`.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::TrackValidate,
        Stage::StftAnalysis,
        Stage::MaskBuild,
        Stage::NnFit,
        Stage::MaskApply,
        Stage::Istft,
        Stage::HpssFilter,
        Stage::ChunkAdvance,
        Stage::ChunkFlush,
        Stage::QueueWait,
        Stage::EngineRun,
        Stage::BatchRun,
    ];

    /// Stable snake_case name, used as the metric label in both
    /// exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::TrackValidate => "track_validate",
            Stage::StftAnalysis => "stft_analysis",
            Stage::MaskBuild => "mask_build",
            Stage::NnFit => "nn_fit",
            Stage::MaskApply => "mask_apply",
            Stage::Istft => "istft",
            Stage::HpssFilter => "hpss_filter",
            Stage::ChunkAdvance => "chunk_advance",
            Stage::ChunkFlush => "chunk_flush",
            Stage::QueueWait => "queue_wait",
            Stage::EngineRun => "engine_run",
            Stage::BatchRun => "batch_run",
        }
    }

    /// Position in [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_consistent_with_discriminants() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s}");
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for s in Stage::ALL {
            assert!(seen.insert(s.name()), "duplicate name {}", s.name());
            assert!(
                s.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{} is not snake_case",
                s.name()
            );
        }
    }
}
