//! The hot-path span API and its thread-local event ring.

use crate::breakdown::StageBreakdown;
use crate::stage::Stage;
use std::cell::RefCell;
use std::time::Instant;

/// Ring capacity per thread. A steady-state packet generates roughly two
/// dozen events (two rounds × six pipeline stages, plus stream/serve
/// wrappers), so this holds a few hundred packets between drains; a
/// serve worker drains once per wakeup. On overflow the newest events
/// are counted as dropped rather than overwriting history — a profiling
/// gap is better surfaced than silently rotated away.
const RING_CAPACITY: usize = 8192;

#[derive(Clone, Copy)]
struct StageEvent {
    stage: Stage,
    nanos: u64,
}

struct Ring {
    events: Vec<StageEvent>,
    dropped: u64,
}

thread_local! {
    static RING: RefCell<Ring> = const {
        RefCell::new(Ring { events: Vec::new(), dropped: 0 })
    };
}

fn push(stage: Stage, nanos: u64) {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.events.len() < RING_CAPACITY {
            ring.events.push(StageEvent { stage, nanos });
        } else {
            ring.dropped += 1;
        }
    });
}

/// An RAII stage timer: started by [`span`], records its inclusive
/// elapsed wall time into the calling thread's event ring when dropped.
///
/// When tracing is disabled at construction the guard holds no clock
/// reading and its drop is a no-op — the whole span is one branch.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    stage: Stage,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            push(self.stage, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a timing span for `stage`, measured on the monotonic clock.
///
/// Bind the guard to a scoped name (`let _span = ...`) so it drops — and
/// records — at the end of the region being measured:
///
/// ```
/// use dhf_obs::{self as obs, Stage};
/// let _span = obs::span(Stage::MaskBuild);
/// // ... stage work ...
/// ```
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    SpanGuard { stage, started: if crate::enabled() { Some(Instant::now()) } else { None } }
}

/// Records an externally measured duration (in seconds) for `stage`.
///
/// For durations that don't bracket a scope — e.g. queue wait computed
/// from an enqueue timestamp. No-op when tracing is disabled; negative
/// and non-finite values are ignored.
#[inline]
pub fn record(stage: Stage, secs: f64) {
    if crate::enabled() && secs.is_finite() && secs >= 0.0 {
        push(stage, (secs * 1e9) as u64);
    }
}

/// Number of events waiting in the calling thread's ring.
///
/// Cheap (one thread-local borrow); lets owners skip taking their
/// aggregation lock when there is nothing to drain.
pub fn pending_events() -> usize {
    RING.with(|ring| ring.borrow().events.len())
}

/// Moves every event recorded on the calling thread into `breakdown`,
/// returning how many were drained. Overflow-dropped events are added to
/// the breakdown's [`dropped_events`](StageBreakdown::dropped_events)
/// tally and the ring is reset.
pub fn drain_thread_into(breakdown: &mut StageBreakdown) -> usize {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let n = ring.events.len();
        for ev in ring.events.drain(..) {
            breakdown.record(ev.stage, ev.nanos as f64 * 1e-9);
        }
        breakdown.add_dropped(ring.dropped);
        ring.dropped = 0;
        n
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The gate is process-wide, so tests that toggle it serialize on
    // this mutex; rings are per-thread, so each test drains only its own
    // events.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    // With tracing compiled out nothing records, so the recording tests
    // are feature-gated; the `obs-off` contract itself is covered below.
    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_pins_the_gate_shut() {
        let _serial = GATE.lock().unwrap();
        crate::set_enabled(true);
        assert!(!crate::enabled());
        {
            let _span = span(Stage::NnFit);
        }
        record(Stage::NnFit, 1e-3);
        crate::set_enabled(false);
        assert_eq!(pending_events(), 0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn span_records_when_enabled_and_not_when_disabled() {
        let _serial = GATE.lock().unwrap();
        let mut b = StageBreakdown::new();
        crate::set_enabled(false);
        {
            let _span = span(Stage::MaskBuild);
        }
        drain_thread_into(&mut b);
        let disabled_count = b.stage(Stage::MaskBuild).count();

        crate::set_enabled(true);
        {
            let _span = span(Stage::MaskBuild);
        }
        crate::set_enabled(false);
        let drained = drain_thread_into(&mut b);
        assert!(drained >= 1);
        assert!(b.stage(Stage::MaskBuild).count() > disabled_count);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn record_filters_junk_durations() {
        let _serial = GATE.lock().unwrap();
        crate::set_enabled(true);
        record(Stage::QueueWait, -1.0);
        record(Stage::QueueWait, f64::NAN);
        record(Stage::QueueWait, f64::INFINITY);
        record(Stage::QueueWait, 2.5e-3);
        crate::set_enabled(false);
        let mut b = StageBreakdown::new();
        drain_thread_into(&mut b);
        assert_eq!(b.stage(Stage::QueueWait).count(), 1);
        let p50 = b.stage(Stage::QueueWait).percentile(50.0).unwrap();
        assert!((p50 - 2.5e-3).abs() < 1e-9, "p50 {p50}");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ring_overflow_is_counted_not_silently_rotated() {
        let _serial = GATE.lock().unwrap();
        crate::set_enabled(true);
        for _ in 0..(RING_CAPACITY + 10) {
            record(Stage::NnFit, 1e-6);
        }
        crate::set_enabled(false);
        let mut b = StageBreakdown::new();
        let drained = drain_thread_into(&mut b);
        // Other enabled-gate tests on this thread may have left a few
        // events behind; the ring still caps at RING_CAPACITY total.
        assert!(drained <= RING_CAPACITY);
        assert!(b.dropped_events() >= 10);
        assert_eq!(pending_events(), 0);
    }
}
