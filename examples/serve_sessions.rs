//! Serving demo: multiplex a small fleet of concurrent wearable streams
//! over a fixed pool of worker shards with `dhf_serve::SessionManager`,
//! then read back the runtime's telemetry.
//!
//! Each "device" gets its own session (own f0 tracks, own separated
//! output); sessions are hash-sharded onto the workers, pushed packet by
//! packet, polled for separated blocks, and flushed by a graceful
//! shutdown at end of stream.
//!
//! ```sh
//! cargo run --release --example serve_sessions
//! ```

use dhf::core::DhfConfig;
use dhf::metrics::si_sdr_db;
use dhf::serve::{ServeConfig, SessionManager};
use dhf::stream::StreamingConfig;
use dhf::synth::duet::drifting_duet;

const FS: f64 = 100.0;

/// Renders one device's two-source mix (the shared `dhf_synth` fixture):
/// slightly different fundamental drift per device, so every session
/// separates a genuinely distinct stream.
/// Returns (mixed, truth source 1, f0 tracks).
fn device_stream(n: usize, device: usize) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let mut duet = drifting_duet(FS, n, device as u64);
    (duet.mixed, duet.sources.swap_remove(0), duet.f0_tracks)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = 8;
    let workers = 2;
    let n = 9000; // 90 s per device
    let packet = 250; // devices ship 2.5 s packets

    // 30 s chunks with 6 s cross-faded overlap, same as live_stream; the
    // deterministic in-painter keeps the demo quick.
    let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast().with_harmonic_interp())?;
    let manager = SessionManager::new(ServeConfig::new(workers)?);

    println!("serving {devices} device streams on {workers} worker shards");
    let mut sessions = Vec::new();
    for d in 0..devices {
        let (mixed, truth, tracks) = device_stream(n, d);
        let id = manager.open(FS, 2, scfg.clone())?;
        println!("  device {d} -> {id}");
        sessions.push((id, mixed, truth, tracks, vec![Vec::new(); 2]));
    }

    // Interleave pushes round-robin across all devices — exactly the
    // arrival pattern a gateway would see — and poll as we go.
    for lo in (0..n).step_by(packet) {
        let hi = (lo + packet).min(n);
        for (id, mixed, _, tracks, out) in &mut sessions {
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(*id, &mixed[lo..hi], &t)?;
            for block in manager.poll(*id)?.blocks {
                for (src, est) in block.sources.iter().enumerate() {
                    out[src].extend_from_slice(est);
                }
            }
        }
    }

    // Graceful shutdown flushes every session's remainder.
    let ids: Vec<_> = sessions.iter().map(|(id, ..)| *id).collect();
    for id in ids {
        let fin = manager.close(id)?;
        let (_, _, _, _, out) =
            sessions.iter_mut().find(|(sid, ..)| *sid == id).expect("known session");
        for block in fin.blocks {
            for (src, est) in block.sources.iter().enumerate() {
                out[src].extend_from_slice(est);
            }
        }
    }

    println!("\nseparation quality (interior, vs ground truth):");
    for (d, (id, _, truth, _, out)) in sessions.iter().enumerate() {
        let (lo, hi) = (500, n - 500);
        let sdr = si_sdr_db(&truth[lo..hi], &out[0][lo..hi]);
        println!("  device {d} ({id}): {} samples out, source 1 SI-SDR {sdr:5.1} dB", out[0].len());
    }

    println!("\ntelemetry:");
    let telemetry = manager.telemetry();
    print!("{telemetry}");
    Ok(())
}
