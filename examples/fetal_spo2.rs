//! End-to-end transabdominal fetal pulse oximetry — the paper's §4.3 end
//! task, offline and streamed.
//!
//! A dual-wavelength (740/850 nm) abdominal PPG mixture with a programmed
//! fetal desaturation event runs through the whole stack: per-wavelength
//! DHF separation pairs the weak fetal estimates, windowed modulation
//! ratios (Eq. 11) become an SpO2 trend through the inverse-linear
//! calibration (Eq. 10) fitted on the recording's blood draws, and the
//! same pipeline then runs *online* through a `StreamingOximeter` with
//! bounded latency.
//!
//! ```sh
//! cargo run --release --example fetal_spo2
//! ```

use dhf::core::{DhfConfig, RoundContext};
use dhf::metrics::pearson;
use dhf::oximetry::{estimate_spo2_trend_in, Calibration, OximetryConfig, StreamingOximeter};
use dhf::stream::StreamingConfig;
use dhf::synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-minute recording with a desaturation event: baseline 55%,
    // nadir 35% around the middle — the shape a fetal monitor must catch.
    let cfg = DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 300.0);
    let rec = generate(&cfg);
    let fs = rec.config.fs;
    println!(
        "dual-wavelength TFO recording: {:.0} s at {} Hz, scenario `{}`, {} blood draws",
        rec.len() as f64 / fs,
        fs,
        cfg.scenario.name(),
        rec.draws.len(),
    );

    // The deterministic harmonic-interpolation in-painter keeps the
    // walkthrough fast; the deep prior (`DhfConfig::fast()` /
    // `::default()`) is the paper's higher-quality default.
    let dhf = DhfConfig::fast().with_harmonic_interp();
    // 30 s SpO2 windows every 10 s; track index 1 is the fetal source.
    let ocfg = OximetryConfig::new(
        1,
        (30.0 * fs) as usize,
        (10.0 * fs) as usize,
        Calibration::default(), // refitted on the blood draws below
    )?;
    let tracks = vec![rec.f0.maternal.clone(), rec.f0.fetal.clone()];

    // ---- Offline: whole-recording separation → ratio trend ------------
    // One RoundContext (SoA spectrogram workspace + FFT plan cache) serves
    // both wavelength channels here and stays warm for any further
    // recordings a batch-scoring caller would push through it.
    let mut ctx = RoundContext::new(&dhf);
    ctx.set_collect_reports(false);
    let trend =
        estimate_spo2_trend_in(&mut ctx, [&rec.mixed[0], &rec.mixed[1]], fs, &tracks, &ocfg)?;
    println!(
        "offline pipeline: {} trend windows ({} FFT plans built, reused across channels)",
        trend.samples.len(),
        ctx.fft_plans_built(),
    );

    // Fit the Eq. 10 calibration on the blood draws: each draw pairs the
    // assayed SaO2 with the ratio of the nearest trend window.
    let (mut draw_ratios, mut draw_sao2) = (Vec::new(), Vec::new());
    for d in &rec.draws {
        let nearest = trend
            .samples
            .iter()
            .min_by(|a, b| {
                let (da, db) =
                    ((a.mid_time_s(fs) - d.time_s).abs(), (b.mid_time_s(fs) - d.time_s).abs());
                da.partial_cmp(&db).unwrap()
            })
            .expect("non-empty trend");
        draw_ratios.push(nearest.ratio);
        draw_sao2.push(d.sao2);
        println!(
            "  draw at {:>6.1} s: R = {:.3}, SaO2 (blood) = {:.3}",
            d.time_s, nearest.ratio, d.sao2
        );
    }
    let cal = Calibration::fit(&draw_ratios, &draw_sao2);
    println!("calibration: 1/(SaO2+{:.3}) = {:.4} + {:.4}·R", cal.k, cal.w0, cal.w1);

    // Apply the fitted calibration to the whole trend and score it
    // against the simulator's per-sample ground truth.
    let spo2: Vec<f64> = trend.ratios().iter().map(|&r| cal.predict(r)).collect();
    let truth: Vec<f64> = trend
        .samples
        .iter()
        .map(|s| rec.sao2[s.start..s.start + s.len].iter().sum::<f64>() / s.len as f64)
        .collect();
    println!("\n  time     R      SpO2    SaO2(true)");
    for ((s, &est), &tru) in trend.samples.iter().zip(&spo2).zip(&truth) {
        println!("  {:>5.0} s  {:.3}  {:.3}   {:.3}", s.mid_time_s(fs), s.ratio, est, tru);
    }
    let mae = spo2.iter().zip(&truth).map(|(e, t)| (e - t).abs()).sum::<f64>() / spo2.len() as f64;
    println!(
        "offline trend: mean |SpO2 error| = {:.3}, correlation = {:.3}",
        mae,
        pearson(&spo2, &truth),
    );

    // ---- Streamed: the same task online, packet by packet -------------
    // Chunked separation sees less temporal context than the offline
    // whole-recording pass, which compresses the ratio swing by a
    // (different) linear factor — so the Eq. 10 calibration is fitted
    // per pipeline configuration, exactly as it is per deployment in
    // vivo. The oximeter streams with the offline fit as a provisional
    // calibration and the session's own draws refit it below.
    let scfg = StreamingConfig::new(3000, 600, dhf)?;
    let ocfg_live = OximetryConfig::new(1, (30.0 * fs) as usize, (10.0 * fs) as usize, cal)?;
    let mut oximeter = StreamingOximeter::new(fs, 2, scfg, ocfg_live)?;
    println!(
        "\nstreaming oximeter: worst-case latency {} samples ({:.0} s)",
        oximeter.max_latency_samples(),
        oximeter.max_latency_samples() as f64 / fs,
    );
    let n = rec.len();
    let packet = 250; // the optode ships 2.5 s packets
    let mut live = Vec::new();
    for lo in (0..n).step_by(packet) {
        let hi = (lo + packet).min(n);
        let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
        for s in oximeter.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &t)? {
            println!(
                "  t={:>5.0} s  window [{:>6}, {:>6})  R {:.3}  provisional SpO2 {:.3}",
                hi as f64 / fs,
                s.start,
                s.start + s.len,
                s.ratio,
                s.spo2,
            );
            live.push(s);
        }
    }
    live.extend(oximeter.flush()?.samples);
    println!("fft plans built across both wavelength sessions: {}", oximeter.fft_plans_built());

    // Refit on the session's own draws against the *streamed* ratios and
    // score the final streamed trend.
    let nearest_live = |t_s: f64| {
        live.iter()
            .min_by(|a, b| {
                let (da, db) = ((a.mid_time_s(fs) - t_s).abs(), (b.mid_time_s(fs) - t_s).abs());
                da.partial_cmp(&db).unwrap()
            })
            .expect("non-empty live trend")
    };
    let live_draw_ratios: Vec<f64> =
        rec.draws.iter().map(|d| nearest_live(d.time_s).ratio).collect();
    let cal_live = Calibration::fit(&live_draw_ratios, &draw_sao2);
    let live_spo2: Vec<f64> = live.iter().map(|s| cal_live.predict(s.ratio)).collect();
    let live_mae = live_spo2.iter().zip(&truth).map(|(e, t)| (e - t).abs()).sum::<f64>()
        / live_spo2.len() as f64;
    let agreement = live_spo2.iter().zip(&spo2).map(|(l, o)| (l - o).abs()).sum::<f64>()
        / live_spo2.len() as f64;
    println!(
        "streamed trend (draw-refitted): mean |SpO2 error| = {:.3}, correlation = {:.3}",
        live_mae,
        pearson(&live_spo2, &truth),
    );
    println!("streaming vs offline: {} windows, mean |ΔSpO2| = {:.4}", live_spo2.len(), agreement);
    Ok(())
}
