//! Observability demo: run a small serving fleet with `dhf_obs` stage
//! tracing enabled and watch the per-stage cost table fill in live,
//! then print the final fleet telemetry and its Prometheus exposition.
//!
//! Tracing is off by default everywhere; one call to
//! `dhf::obs::set_enabled(true)` opens the gate, after which every
//! pipeline stage (track validation, STFT, mask build, deep-prior fit,
//! mask apply, ISTFT), every streaming chunk advance/flush, and every
//! serving step (queue wait, engine run, batch run) records a span into
//! a thread-local ring. The serve workers drain their rings into the
//! shard telemetry, which merges into the fleet-wide table shown here.
//!
//! ```sh
//! cargo run --release --example observe
//! ```

use dhf::core::DhfConfig;
use dhf::serve::{ServeConfig, SessionManager};
use dhf::stream::StreamingConfig;
use dhf::synth::duet::drifting_duet;

const FS: f64 = 100.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = 6;
    let workers = 2;
    let n = 9000; // 90 s per device
    let packet = 250; // 2.5 s packets

    // Open the tracing gate: from here on, spans are recorded. (With the
    // gate shut — the default — every span site is a single relaxed
    // atomic load.)
    dhf::obs::set_enabled(true);

    let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast().with_harmonic_interp())?;
    let manager = SessionManager::new(ServeConfig::new(workers)?);

    println!("observing {devices} device streams on {workers} worker shards (tracing on)\n");
    let mut sessions = Vec::new();
    for d in 0..devices {
        let duet = drifting_duet(FS, n, d as u64);
        let id = manager.open(FS, 2, scfg.clone())?;
        sessions.push((id, duet.mixed, duet.f0_tracks));
    }

    // Stream round-robin, printing the live per-stage table as work
    // accumulates — the same view a dashboard would render from the
    // Prometheus endpoint.
    let rounds = n / packet;
    for (round, lo) in (0..n).step_by(packet).enumerate() {
        let hi = (lo + packet).min(n);
        for (id, mixed, tracks) in &sessions {
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(*id, &mixed[lo..hi], &t)?;
            let _ = manager.poll(*id)?;
        }
        // Pace the pushes a little so the workers keep up and the live
        // table below actually advances between checkpoints (an
        // unthrottled push loop finishes before the first drain).
        std::thread::sleep(std::time::Duration::from_millis(10));
        if (round + 1) % (rounds / 3).max(1) == 0 {
            let telemetry = manager.telemetry();
            let stages = telemetry.stage_breakdown();
            println!(
                "after {:>3} s of stream per device ({} samples out, queue hwm {}):",
                (round + 1) * packet / FS as usize,
                telemetry.samples_out(),
                telemetry.queue_depth_hwm(),
            );
            if stages.is_empty() {
                println!("  (no spans drained yet)\n");
            } else {
                for line in stages.to_string().lines() {
                    println!("  {line}");
                }
                println!();
            }
        }
    }

    for (id, _, _) in &sessions {
        manager.close(*id)?;
    }

    println!("final telemetry:");
    let telemetry = manager.telemetry();
    print!("{telemetry}");

    println!("\nPrometheus exposition (what a /metrics endpoint would serve):");
    print!("{}", telemetry.prometheus());

    dhf::obs::set_enabled(false);
    Ok(())
}
