//! Live-stream demo: feed a two-source wearable mix into the streaming
//! separator one "sensor packet" at a time and watch bounded-latency
//! separated output come back.
//!
//! ```sh
//! cargo run --release --example live_stream
//! ```

use dhf::core::DhfConfig;
use dhf::metrics::si_sdr_db;
use dhf::stream::{StreamingConfig, StreamingSeparator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 100.0;
    let n = 12000; // 2 minutes of signal
    let packet = 100; // the device ships 1 s packets

    // Two quasi-periodic sources with independently drifting fundamentals
    // (e.g. maternal pulse ~1.35 Hz and a faster ~2.5 Hz source).
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 6.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 9.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.35, 0.3);
    let mixed: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();

    // 30 s analysis chunks, 6 s cross-faded overlap: worst-case output
    // latency is one chunk (30 s of signal), each chunk reuses the
    // session's cached FFT plans and spectrogram buffers.
    let cfg = StreamingConfig::new(3000, 600, DhfConfig::fast())?;
    println!(
        "streaming session: chunk {} samples, overlap {}, latency ≤ {} samples ({:.0} s)",
        cfg.chunk_len(),
        cfg.overlap(),
        cfg.max_latency_samples(),
        cfg.max_latency_samples() as f64 / fs,
    );
    let mut sep = StreamingSeparator::new(fs, 2, cfg)?;

    let mut out: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (p, lo) in (0..n).step_by(packet).enumerate() {
        let hi = (lo + packet).min(n);
        let tracks: [&[f64]; 2] = [&track1[lo..hi], &track2[lo..hi]];
        let blocks = sep.push(&mixed[lo..hi], &tracks)?;
        for block in blocks {
            println!(
                "t={:6.1}s  packet {p:4}: emitted samples [{}, {}) — lag {:.1} s",
                hi as f64 / fs,
                block.start,
                block.start + block.len(),
                (hi - block.start - block.len()) as f64 / fs,
            );
            for (src, est) in block.sources.iter().enumerate() {
                out[src].extend_from_slice(est);
            }
        }
    }
    let fin = sep.flush()?;
    if let Some(block) = fin.block {
        println!("flush: emitted final [{}, {})", block.start, block.start + block.len());
        for (src, est) in block.sources.iter().enumerate() {
            out[src].extend_from_slice(est);
        }
    }
    println!("fft plans built over the whole session: {}", sep.fft_plans_built());

    // Score the streamed estimates against the ground-truth sources.
    let lo = 500;
    let hi = out[0].len() - 500;
    for (i, truth) in [&s1, &s2].iter().enumerate() {
        println!(
            "source{}: streamed SI-SDR {:6.2} dB over [{lo}, {hi})",
            i + 1,
            si_sdr_db(&truth[lo..hi], &out[i][lo..hi]),
        );
    }
    Ok(())
}
