//! Quickstart: separate a two-source quasi-periodic mix with DHF.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dhf::core::{separate, DhfConfig};
use dhf::metrics::{sdr_db, si_sdr_db};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 100.0;
    let n = 6000; // 60 seconds

    // Two quasi-periodic sources whose frequencies drift independently;
    // source 1's second harmonic sweeps across source 2's fundamental —
    // the crossover situation classic filtering cannot handle.
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 2.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + 0.4 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0);
    let s2 = render(&track2, 0.3);
    let mixed: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();

    // Separate. `DhfConfig::default()` reproduces the paper's settings;
    // `fast()` is a light configuration that runs in seconds.
    let cfg = DhfConfig::fast();
    let result = separate(&mixed, fs, &[track1, track2], &cfg)?;

    let lo = 500;
    let hi = n - 500;
    println!("DHF separated {} sources in {} rounds", result.sources.len(), result.rounds.len());
    for (i, (truth, est)) in [s1, s2].iter().zip(&result.sources).enumerate() {
        println!(
            "  source{}: SDR {:6.2} dB (scale-invariant {:6.2} dB)",
            i + 1,
            sdr_db(&truth[lo..hi], &est[lo..hi]),
            si_sdr_db(&truth[lo..hi], &est[lo..hi]),
        );
    }
    for round in &result.rounds {
        println!(
            "  round on source{}: {:.1}% of spectrogram cells in-painted, time dilation {}",
            round.source_index + 1,
            100.0 * round.hidden_fraction,
            round.dilation
        );
    }
    Ok(())
}
