//! End-to-end fetal-monitoring scenario on the simulated TFO recording:
//! separate the fetal PPG from one dual-wavelength window and estimate
//! fetal SpO2 through the modulation-ratio calibration (paper §4.3).
//!
//! ```sh
//! cargo run --release --example fetal_monitoring
//! ```

use dhf::core::{separate, DhfConfig};
use dhf::oximetry::{ac_amplitude, dc_level, modulation_ratio, Calibration};
use dhf::synth::invivo::{simulate, InvivoConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A shortened sheep-2 protocol (the structure — hypoxia episode,
    // blood draws, two wavelengths — is preserved).
    let recording = simulate(&InvivoConfig::sheep2().scaled(0.1));
    let fs = recording.config.fs;
    println!(
        "simulated TFO recording: {:.0} s, {} blood draws, wavelengths 740/850 nm",
        recording.len() as f64 / fs,
        recording.draws.len()
    );

    let mut cfg = DhfConfig::fast();
    cfg.inpaint.iterations = 80;

    // For each draw, separate the fetal signal in a 45 s window per
    // wavelength and compute the modulation ratio R (Eq. 11).
    let half = (22.5 * fs) as usize;
    let mut ratios = Vec::new();
    let mut sao2 = Vec::new();
    for draw in &recording.draws {
        let centre = recording.sample_at(draw.time_s);
        let lo = centre.saturating_sub(half);
        let hi = (centre + half).min(recording.len());
        let mut ac = [0.0f64; 2];
        let mut dc = [0.0f64; 2];
        for lambda in 0..2 {
            let window = &recording.mixed[lambda][lo..hi];
            dc[lambda] = dc_level(window);
            let pulsatile: Vec<f64> = window.iter().map(|&v| v - dc[lambda]).collect();
            let tracks =
                vec![recording.f0.maternal[lo..hi].to_vec(), recording.f0.fetal[lo..hi].to_vec()];
            let result = separate(&pulsatile, fs, &tracks, &cfg)?;
            ac[lambda] = ac_amplitude(&result.sources[1]);
        }
        let r = modulation_ratio(ac[0], dc[0], ac[1], dc[1]);
        println!("draw at {:>6.1} s: R = {:.3}, SaO2 (blood) = {:.3}", draw.time_s, r, draw.sao2);
        ratios.push(r);
        sao2.push(draw.sao2);
    }

    // Fit the Eq. 10 calibration and report agreement.
    let cal = Calibration::fit(&ratios, &sao2);
    println!("calibration: 1/(SaO2+{:.3}) = {:.4} + {:.4}·R", cal.k, cal.w0, cal.w1);
    let pred = cal.predict_many(&ratios);
    for ((r, p), s) in ratios.iter().zip(&pred).zip(&sao2) {
        println!("  R {:.3} -> SpO2 {:.3} (SaO2 {:.3})", r, p, s);
    }
    let corr = dhf::metrics::pearson(&pred, &sao2);
    println!("SpO2 vs SaO2 correlation: {corr:.3}");
    Ok(())
}
