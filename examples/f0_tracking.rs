//! Fundamental-frequency tracking — the "preliminary analysis" route for
//! obtaining the source frequencies DHF assumes known (paper §1).
//!
//! Estimates the maternal track from a simulated TFO channel with the
//! autocorrelation tracker and compares it against the ground truth, then
//! runs DHF with the *estimated* track to show the pipeline tolerates
//! realistic tracking error.
//!
//! ```sh
//! cargo run --release --example f0_tracking
//! ```

use dhf::core::f0::F0Estimator;
use dhf::core::{separate, DhfConfig};
use dhf::metrics::sdr_db;
use dhf::oximetry::dc_level;
use dhf::synth::invivo::{simulate, InvivoConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let recording = simulate(&InvivoConfig::sheep1().scaled(0.05));
    let fs = recording.config.fs;
    let window = &recording.mixed[0];
    let dc = dc_level(window);
    let pulsatile: Vec<f64> = window.iter().map(|&v| v - dc).collect();

    // Track the maternal heart rate from the mixed signal alone.
    let band = recording.config.maternal_band;
    let estimator = F0Estimator::new(band.0 - 0.1, band.1 + 0.1)?;
    let estimated = estimator.estimate_track(&pulsatile, fs)?;

    let truth = &recording.f0.maternal;
    let n = truth.len();
    let mean_err: f64 = (n / 10..9 * n / 10).map(|i| (estimated[i] - truth[i]).abs()).sum::<f64>()
        / (8 * n / 10) as f64;
    println!("maternal f0 tracking: mean error {mean_err:.3} Hz over {:.0} s", n as f64 / fs);

    // Separate the maternal signal using the estimated track (fetal track
    // taken as known, e.g. from an auxiliary Doppler sensor).
    let tracks = vec![estimated, recording.f0.fetal.clone()];
    let mut cfg = DhfConfig::fast();
    cfg.inpaint.iterations = 80;
    let result = separate(&pulsatile, fs, &tracks, &cfg)?;
    let lo = (5.0 * fs) as usize;
    let hi = n - lo;
    let sdr = sdr_db(&recording.maternal_truth[0][lo..hi], &result.sources[0][lo..hi]);
    println!("maternal separation with estimated track: SDR {sdr:.2} dB");
    Ok(())
}
