//! Separate one of the paper's Table-1 synthesized mixed signals and
//! compare DHF against the strongest baseline (spectral masking).
//!
//! ```sh
//! cargo run --release --example synthetic_separation -- 1
//! ```
//!
//! The argument (1–5) picks the mixed signal; MSig4/5 contain three
//! sources including respiration.

use dhf::baselines::{masking::SpectralMasking, SeparationContext, Separator};
use dhf::core::{separate, DhfConfig};
use dhf::dsp::filter::band_limit;
use dhf::metrics::sdr_db;
use dhf::synth::table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(1);
    let mix = table1::mixed_signal_with_duration(index, 42, 60.0);
    println!(
        "Table-1 MSig{index}: {} sources, {:.0} s at {} Hz",
        mix.num_sources(),
        mix.samples.len() as f64 / mix.fs,
        mix.fs
    );

    // Band-limit to [0, 12] Hz as the paper does before evaluation.
    let observed = band_limit(&mix.samples, mix.fs, 12.0)?;
    let tracks = mix.f0_tracks();

    // Baseline: harmonic-comb spectral masking.
    let ctx = SeparationContext { fs: mix.fs, f0_tracks: &tracks };
    let masking_est = SpectralMasking::default().separate(&observed, &ctx)?;

    // DHF with the paper configuration at a moderate iteration budget
    // (expect ~20-60 s on one CPU core; raise iterations for paper-grade
    // quality).
    let mut cfg = DhfConfig::default();
    cfg.inpaint.iterations = 150;
    let dhf = separate(&observed, mix.fs, &tracks, &cfg)?;

    let lo = (5.0 * mix.fs) as usize;
    let hi = mix.samples.len() - lo;
    println!("{:<10} {:>16} {:>10}", "source", "masking SDR(dB)", "DHF SDR(dB)");
    for (i, truth) in mix.sources.iter().enumerate() {
        println!(
            "{:<10} {:>16.2} {:>10.2}",
            format!("source{}", i + 1),
            sdr_db(&truth.samples[lo..hi], &masking_est[i][lo..hi]),
            sdr_db(&truth.samples[lo..hi], &dhf.sources[i][lo..hi]),
        );
    }
    Ok(())
}
