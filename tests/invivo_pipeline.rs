//! Cross-crate integration of the in-vivo chain: TFO simulation →
//! separation → AC/DC extraction → modulation ratio → calibration →
//! correlation, mirroring the Figure-6 bench at test-sized budgets.

use dhf::metrics::pearson;
use dhf::oximetry::{ac_amplitude, dc_level, modulation_ratio, Calibration};
use dhf::synth::invivo::{simulate, InvivoConfig};

/// Oracle chain: use the ground-truth fetal AC. This validates the
/// simulator's forward model — if the oracle cannot recover SaO2, no
/// separator could.
#[test]
fn oracle_fetal_signal_recovers_sao2_almost_perfectly() {
    let recording = simulate(&InvivoConfig::sheep1().scaled(0.1));
    let fs = recording.config.fs;
    let half = (20.0 * fs) as usize;
    let mut ratios = Vec::new();
    let mut sao2 = Vec::new();
    for draw in &recording.draws {
        let centre = recording.sample_at(draw.time_s);
        let lo = centre.saturating_sub(half);
        let hi = (centre + half).min(recording.len());
        let mut ac = [0.0; 2];
        let mut dc = [0.0; 2];
        for lambda in 0..2 {
            ac[lambda] = ac_amplitude(&recording.fetal_truth[lambda][lo..hi]);
            dc[lambda] = dc_level(&recording.mixed[lambda][lo..hi]);
        }
        ratios.push(modulation_ratio(ac[0], dc[0], ac[1], dc[1]));
        sao2.push(draw.sao2);
    }
    let cal = Calibration::fit(&ratios, &sao2);
    let corr = pearson(&cal.predict_many(&ratios), &sao2);
    assert!(corr > 0.9, "oracle correlation {corr:.3}");
}

/// Raw-mix chain: computing R from the *unseparated* pulsatile signal
/// must be clearly worse than the oracle — interference drift corrupts
/// the ratio, which is the entire reason separation quality matters.
#[test]
fn unseparated_signal_degrades_sao2_recovery() {
    let recording = simulate(&InvivoConfig::sheep2().scaled(0.1));
    let fs = recording.config.fs;
    let half = (20.0 * fs) as usize;
    let mut oracle = Vec::new();
    let mut raw = Vec::new();
    let mut sao2 = Vec::new();
    for draw in &recording.draws {
        let centre = recording.sample_at(draw.time_s);
        let lo = centre.saturating_sub(half);
        let hi = (centre + half).min(recording.len());
        let mut r = [[0.0f64; 2]; 2];
        for (lambda, mixed) in recording.mixed.iter().enumerate() {
            let window = &mixed[lo..hi];
            let dc = dc_level(window);
            let pulsatile: Vec<f64> = window.iter().map(|&v| v - dc).collect();
            r[0][lambda] = ac_amplitude(&recording.fetal_truth[lambda][lo..hi]) / dc;
            r[1][lambda] = ac_amplitude(&pulsatile) / dc;
        }
        oracle.push(r[0][0] / r[0][1]);
        raw.push(r[1][0] / r[1][1]);
        sao2.push(draw.sao2);
    }
    let corr_oracle = pearson(&Calibration::fit(&oracle, &sao2).predict_many(&oracle), &sao2);
    let corr_raw = pearson(&Calibration::fit(&raw, &sao2).predict_many(&raw), &sao2);
    assert!(
        corr_oracle > corr_raw + 0.1,
        "oracle {corr_oracle:.3} must clearly beat raw {corr_raw:.3}"
    );
}

#[test]
fn simulator_exposes_consistent_ground_truth() {
    let recording = simulate(&InvivoConfig::sheep1().scaled(0.05));
    // The mixed signal equals DC + maternal + respiration + fetal + noise;
    // check the published truths are actually inside the mix by energy
    // accounting (noise and respiration account for the remainder).
    let n = recording.len();
    let mut explained = 0.0;
    let mut total = 0.0;
    for i in 0..n {
        let centred = recording.mixed[0][i] - dhf::synth::invivo::DC_LEVELS[0];
        let known = recording.maternal_truth[0][i] + recording.fetal_truth[0][i];
        explained += (centred - known) * (centred - known);
        total += centred * centred;
    }
    // Respiration + noise carry a substantial but not dominant share.
    let unexplained = explained / total;
    assert!(
        unexplained > 0.05 && unexplained < 0.95,
        "unexplained share {unexplained:.3} out of range"
    );
}

#[test]
fn fetal_estimation_with_dhf_tracks_oracle_on_one_window() {
    use dhf::core::{separate, DhfConfig};
    let recording = simulate(&InvivoConfig::sheep1().scaled(0.05));
    let fs = recording.config.fs;
    let lo = recording.len() / 4;
    let hi = lo + (40.0 * fs) as usize;
    let window = &recording.mixed[0][lo..hi];
    let dc = dc_level(window);
    let pulsatile: Vec<f64> = window.iter().map(|&v| v - dc).collect();
    let tracks = vec![recording.f0.maternal[lo..hi].to_vec(), recording.f0.fetal[lo..hi].to_vec()];
    let mut cfg = DhfConfig::fast();
    cfg.inpaint.iterations = 50;
    let result = separate(&pulsatile, fs, &tracks, &cfg).unwrap();
    let est_ac = ac_amplitude(&result.sources[1]);
    let true_ac = ac_amplitude(&recording.fetal_truth[0][lo..hi]);
    // The fetal AC estimate lands within a factor of three of the truth —
    // enough for the modulation ratio to carry SaO2 information.
    assert!(
        est_ac > true_ac / 3.0 && est_ac < true_ac * 3.0,
        "fetal AC {est_ac:.4} vs truth {true_ac:.4}"
    );
}
