//! Miniature versions of the paper's qualitative claims, small enough for
//! the test suite. The full-scale versions live in `crates/bench`; these
//! guard the *shape* of the results against regressions.

use dhf::nn::ablation::PriorVariant;
use dhf::nn::{DeepPriorNet, NetConfig};
use dhf::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's masking situation in miniature: a constant target harmonic
/// comb, an interfering source whose harmonic ridges sweep across the
/// spectrogram and are concealed (±1 bin). Returns the MSE a variant
/// achieves on the *hidden target-ridge cells* — the cells the DHF
/// pipeline needs the prior to recover — after a fixed budget.
fn hidden_ridge_mse_for(variant: PriorVariant, iters: usize, seed: u64) -> f64 {
    let (bins, frames) = (32, 24);
    let ridge_rows = [(4usize, 0.9f32), (8, 0.5), (12, 0.25), (16, 0.15)];
    let mut target = Tensor::filled(&[1, bins, frames], 0.05);
    for (row, amp) in ridge_rows {
        for m in 0..frames {
            target.data_mut()[row * frames + m] = amp;
        }
    }
    // Interferer fundamental sweeps 2.6 → 5.4 bins; its first six
    // harmonics are concealed in every frame, so different rows are
    // hidden at different times (unlike a blanket time gap, this is what
    // the DHF mask of §3.3 produces).
    let mut mask = Tensor::filled(&[1, bins, frames], 1.0);
    for m in 0..frames {
        let g0 = 2.6 + 2.8 * m as f64 / frames as f64;
        for k in 1..=6 {
            let centre = (g0 * k as f64).round() as isize;
            for db in -1..=1isize {
                let b = centre + db;
                if (0..bins as isize).contains(&b) {
                    mask.data_mut()[b as usize * frames + m] = 0.0;
                }
            }
        }
    }
    let base = NetConfig { base_channels: 6, depth: 1, ..NetConfig::default() };
    let cfg = variant.configure(&base);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = DeepPriorNet::new(&cfg, bins, frames, &mut rng).unwrap();
    net.fit(&target, &mask, iters, 0.02);
    let out = net.output_image();
    let mut err = 0.0;
    let mut count = 0;
    for (row, _) in ridge_rows {
        for m in 0..frames {
            let i = row * frames + m;
            if mask.data()[i] < 0.5 {
                let d = (out.data()[i] - target.data()[i]) as f64;
                err += d * d;
                count += 1;
            }
        }
    }
    err / count as f64
}

/// Figure-3 shape: the spectrally accurate design (anchor 1, no frequency
/// pooling) in-paints the hidden target-ridge cells better than the
/// Zhang-style harmonic baseline (anchor > 1 with frequency max-pooling)
/// under the same budget — the paper's central ablation claim. Deep-prior
/// fits are noisy, so the claim is asserted on the mean over a fixed set
/// of seeds rather than a single draw.
#[test]
fn spac_prior_inpaints_better_than_anchor2_baseline() {
    let seeds = [1u64, 7, 13, 42];
    let mean = |variant: PriorVariant| -> f64 {
        seeds.iter().map(|&s| hidden_ridge_mse_for(variant, 200, s)).sum::<f64>()
            / seeds.len() as f64
    };
    let baseline = mean(PriorVariant::HarmonicBaseline);
    let spac = mean(PriorVariant::SpectrallyAccurate);
    assert!(
        spac < baseline,
        "SpAc {spac:.2e} must beat the anchor>1+pooling baseline {baseline:.2e}"
    );
}

/// Table-2 shape (miniature): on a crossover mix, DHF recovers the weak
/// source better than harmonic-comb spectral masking, which must hand the
/// crossover bins to the stronger source.
#[test]
fn dhf_beats_masking_on_weak_crossover_source() {
    use dhf::baselines::{masking::SpectralMasking, SeparationContext, Separator};
    use dhf::core::{separate, DhfConfig};
    use dhf::metrics::si_sdr_db;

    let fs = 100.0;
    let n = 6000;
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 2.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.15, 0.3); // weak source under s1's 2nd harmonic
    let mixed: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    let tracks = vec![track1, track2];

    let ctx = SeparationContext { fs, f0_tracks: &tracks };
    let masking = SpectralMasking::default().separate(&mixed, &ctx).unwrap();
    // The full-size configuration: comb masking with oracle tracks is a
    // strong baseline on a weak crossover source, and the reduced
    // `fast()` network cannot out-resolve it (the fig5 bench shows the
    // same gap at paper scale). Only the iteration budget is trimmed.
    let mut cfg = DhfConfig::default();
    cfg.inpaint.iterations = 120;
    let dhf = separate(&mixed, fs, &tracks, &cfg).unwrap();

    let lo = 500;
    let hi = n - 500;
    let mask_sdr = si_sdr_db(&s2[lo..hi], &masking[1][lo..hi]);
    let dhf_sdr = si_sdr_db(&s2[lo..hi], &dhf.sources[1][lo..hi]);
    assert!(
        dhf_sdr > mask_sdr,
        "weak source: DHF {dhf_sdr:.2} dB must beat masking {mask_sdr:.2} dB"
    );
}

/// Figure-6 shape (miniature): on the simulated TFO data, the modulation
/// ratio computed from the unseparated mix correlates with SaO2 worse
/// than the ratio from the ground-truth fetal signal — separation quality
/// is the binding constraint on SpO2 accuracy.
#[test]
fn separation_quality_bounds_spo2_accuracy() {
    use dhf::metrics::pearson;
    use dhf::oximetry::{ac_amplitude, dc_level, Calibration};
    use dhf::synth::invivo::{simulate, InvivoConfig};

    let recording = simulate(&InvivoConfig::sheep2().scaled(0.1));
    let fs = recording.config.fs;
    let half = (20.0 * fs) as usize;
    let mut oracle_r = Vec::new();
    let mut raw_r = Vec::new();
    let mut sao2 = Vec::new();
    for draw in &recording.draws {
        let centre = recording.sample_at(draw.time_s);
        let lo = centre.saturating_sub(half);
        let hi = (centre + half).min(recording.len());
        let mut oracle = [0.0f64; 2];
        let mut raw = [0.0f64; 2];
        for lambda in 0..2 {
            let window = &recording.mixed[lambda][lo..hi];
            let dc = dc_level(window);
            let pulsatile: Vec<f64> = window.iter().map(|&v| v - dc).collect();
            oracle[lambda] = ac_amplitude(&recording.fetal_truth[lambda][lo..hi]) / dc;
            raw[lambda] = ac_amplitude(&pulsatile) / dc;
        }
        oracle_r.push(oracle[0] / oracle[1]);
        raw_r.push(raw[0] / raw[1]);
        sao2.push(draw.sao2);
    }
    let c_oracle = pearson(&Calibration::fit(&oracle_r, &sao2).predict_many(&oracle_r), &sao2);
    let c_raw = pearson(&Calibration::fit(&raw_r, &sao2).predict_many(&raw_r), &sao2);
    assert!(c_oracle > 0.9, "oracle chain must be near-perfect, got {c_oracle:.3}");
    assert!(c_oracle > c_raw, "oracle {c_oracle:.3} must beat raw {c_raw:.3}");
}
