//! Miniature versions of the `examples/*.rs` main paths, so the examples'
//! underlying flows cannot silently rot. Sizes are cut far below the
//! examples' defaults (CI additionally compiles the examples themselves
//! via `cargo build --examples`).

use dhf::baselines::{masking::SpectralMasking, SeparationContext, Separator};
use dhf::core::f0::F0Estimator;
use dhf::core::{separate, DhfConfig};
use dhf::dsp::filter::band_limit;
use dhf::metrics::sdr_db;
use dhf::oximetry::{dc_level, Calibration};
use dhf::serve::{ServeConfig, SessionManager};
use dhf::stream::{StreamingConfig, StreamingSeparator};
use dhf::synth::invivo::{simulate, InvivoConfig};
use dhf::synth::table1;

/// A tiny config completing in a couple of seconds.
fn smoke_cfg() -> DhfConfig {
    let mut cfg = DhfConfig::fast();
    cfg.inpaint.iterations = 25;
    cfg
}

/// `examples/quickstart.rs`: drifting two-source mix, separate, score.
#[test]
fn quickstart_path() {
    let fs = 100.0;
    let n = 3000;
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 2.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + 0.4 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0);
    let s2 = render(&track2, 0.3);
    let mixed: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();

    let result = separate(&mixed, fs, &[track1, track2], &smoke_cfg()).unwrap();
    assert_eq!(result.sources.len(), 2);
    assert!(result.sources.iter().all(|s| s.len() == n));
    // The quickstart prints SDRs; here they only need to be computable.
    let _ = sdr_db(&s1[300..n - 300], &result.sources[0][300..n - 300]);
}

/// `examples/synthetic_separation.rs`: Table-1 mix, band-limit, DHF vs
/// spectral masking.
#[test]
fn synthetic_separation_path() {
    let mix = table1::mixed_signal_with_duration(1, 42, 25.0);
    let observed = band_limit(&mix.samples, mix.fs, 12.0).unwrap();
    let tracks = mix.f0_tracks();

    let dhf = separate(&observed, mix.fs, &tracks, &smoke_cfg()).unwrap();
    assert_eq!(dhf.sources.len(), mix.num_sources());

    let ctx = SeparationContext { fs: mix.fs, f0_tracks: &tracks };
    let masked = SpectralMasking::default().separate(&observed, &ctx).unwrap();
    assert_eq!(masked.len(), mix.num_sources());
}

/// `examples/live_stream.rs`: packet-wise streaming separation with
/// bounded latency, flushed at end of stream.
#[test]
fn live_stream_path() {
    let fs = 100.0;
    let n = 4000;
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 4.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + 0.4 * (2.0 * phase).sin())
            })
            .collect()
    };
    let mixed: Vec<f64> =
        render(&track1, 1.0).iter().zip(&render(&track2, 0.3)).map(|(a, b)| a + b).collect();

    let cfg = StreamingConfig::new(3000, 600, smoke_cfg()).unwrap();
    let mut sep = StreamingSeparator::new(fs, 2, cfg).unwrap();
    let mut emitted = 0usize;
    for lo in (0..n).step_by(100) {
        let hi = (lo + 100).min(n);
        let tracks: [&[f64]; 2] = [&track1[lo..hi], &track2[lo..hi]];
        for block in sep.push(&mixed[lo..hi], &tracks).unwrap() {
            assert_eq!(block.start, emitted);
            emitted += block.len();
        }
    }
    let fin = sep.flush().unwrap();
    emitted += fin.block.map_or(0, |b| b.len());
    assert_eq!(fin.dropped_samples, 0);
    assert_eq!(emitted, n, "flush must account for every ingested sample");
}

/// `examples/serve_sessions.rs`: a miniature device fleet through the
/// sharded serving runtime — open, interleaved pushes, poll, graceful
/// shutdown, telemetry accounting.
#[test]
fn serve_sessions_path() {
    let fs = 100.0;
    let n = 3600;
    let devices = 3;
    let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast().with_harmonic_interp()).unwrap();
    let manager = SessionManager::new(ServeConfig::new(2).unwrap());
    let streams: Vec<_> = (0..devices)
        .map(|d| {
            let duet = dhf::synth::duet::drifting_duet(fs, n, d as u64);
            (duet.mixed, duet.f0_tracks)
        })
        .collect();
    let ids: Vec<_> = (0..devices).map(|_| manager.open(fs, 2, scfg.clone()).unwrap()).collect();

    let mut emitted = vec![0usize; devices];
    for lo in (0..n).step_by(300) {
        let hi = (lo + 300).min(n);
        for (d, (mixed, tracks)) in streams.iter().enumerate() {
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(ids[d], &mixed[lo..hi], &t).unwrap();
            let out = manager.poll(ids[d]).unwrap();
            assert!(out.error.is_none());
            emitted[d] += out.blocks.iter().map(|b| b.len()).sum::<usize>();
        }
    }
    let report = manager.shutdown().unwrap();
    assert_eq!(report.sessions.len(), devices);
    for (id, outcome) in &report.sessions {
        let d = ids.iter().position(|i| i == id).expect("known session");
        assert_eq!(outcome.dropped_samples, 0);
        emitted[d] += outcome.blocks.iter().map(|b| b.len()).sum::<usize>();
    }
    assert!(emitted.iter().all(|&e| e == n), "every device's stream must come back in full");
    assert_eq!(report.telemetry.samples_out(), (devices * n) as u64);
    assert!(report.telemetry.latency_percentile(99.0).is_some());
}

/// `examples/f0_tracking.rs`: estimate the maternal track from the mixed
/// channel; it must stay inside the configured band.
#[test]
fn f0_tracking_path() {
    let recording = simulate(&InvivoConfig::sheep1().scaled(0.02));
    let fs = recording.config.fs;
    let window = &recording.mixed[0];
    let dc = dc_level(window);
    let pulsatile: Vec<f64> = window.iter().map(|&v| v - dc).collect();

    let band = recording.config.maternal_band;
    let estimator = F0Estimator::new(band.0 - 0.1, band.1 + 0.1).unwrap();
    let estimated = estimator.estimate_track(&pulsatile, fs).unwrap();
    assert_eq!(estimated.len(), pulsatile.len());
    assert!(estimated.iter().all(|&f| f >= band.0 - 0.1 - 1e-9 && f <= band.1 + 0.1 + 1e-9));
}

/// `examples/fetal_spo2.rs`: the end-to-end oximetry walkthrough at
/// miniature scale — offline trend, blood-draw calibration fit, and the
/// streaming oximeter over the same recording. (The full-scale accuracy
/// bounds live in `tests/oximetry_e2e.rs`.)
#[test]
fn fetal_spo2_path() {
    use dhf::oximetry::{estimate_spo2_trend, OximetryConfig, StreamingOximeter};
    use dhf::stream::StreamingConfig;
    use dhf::synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};

    let rec = generate(&DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 80.0));
    let fs = rec.config.fs;
    assert!(rec.draws.len() >= 2, "protocol must retain blood draws");
    let dhf = DhfConfig::fast().with_harmonic_interp();
    let ocfg =
        OximetryConfig::new(1, (20.0 * fs) as usize, (10.0 * fs) as usize, Calibration::default())
            .unwrap();
    let tracks = vec![rec.f0.maternal.clone(), rec.f0.fetal.clone()];

    // Offline trend + draw-fitted calibration, as the example does.
    let trend =
        estimate_spo2_trend([&rec.mixed[0], &rec.mixed[1]], fs, &tracks, &dhf, &ocfg).unwrap();
    assert!(!trend.samples.is_empty());
    let (mut draw_ratios, mut draw_sao2) = (Vec::new(), Vec::new());
    for d in &rec.draws {
        let nearest = trend
            .samples
            .iter()
            .min_by(|a, b| {
                let (da, db) =
                    ((a.mid_time_s(fs) - d.time_s).abs(), (b.mid_time_s(fs) - d.time_s).abs());
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        draw_ratios.push(nearest.ratio);
        draw_sao2.push(d.sao2);
    }
    let cal = Calibration::fit(&draw_ratios, &draw_sao2);
    assert!(trend.ratios().iter().all(|&r| cal.predict(r).is_finite()));

    // Streaming path over the same recording.
    let scfg = StreamingConfig::new(3000, 600, dhf).unwrap();
    let ocfg = OximetryConfig::new(1, (20.0 * fs) as usize, (10.0 * fs) as usize, cal).unwrap();
    let mut oximeter = StreamingOximeter::new(fs, 2, scfg, ocfg).unwrap();
    let n = rec.len();
    let mut live = Vec::new();
    for lo in (0..n).step_by(500) {
        let hi = (lo + 500).min(n);
        let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
        live.extend(oximeter.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &t).unwrap());
    }
    let fin = oximeter.flush().unwrap();
    assert_eq!(fin.dropped_samples, 0);
    live.extend(fin.samples);
    assert_eq!(live.len(), trend.samples.len(), "streaming must emit every completable window");
    assert!(live.iter().all(|s| s.spo2.is_finite()));
}

/// `examples/observe.rs`: a miniature traced fleet — enable `dhf_obs`,
/// stream a couple of sessions, and check the stage breakdown and the
/// Prometheus exposition both carry the recorded spans.
#[test]
fn observe_path() {
    let fs = 100.0;
    let n = 3600;
    let scfg = StreamingConfig::new(3000, 600, DhfConfig::fast().with_harmonic_interp()).unwrap();
    let manager = SessionManager::new(ServeConfig::new(1).unwrap());

    dhf::obs::set_enabled(true);
    let ids: Vec<_> = (0..2)
        .map(|d| {
            let duet = dhf::synth::duet::drifting_duet(fs, n, d as u64);
            let id = manager.open(fs, 2, scfg.clone()).unwrap();
            (id, duet.mixed, duet.f0_tracks)
        })
        .collect();
    for lo in (0..n).step_by(300) {
        let hi = (lo + 300).min(n);
        for (id, mixed, tracks) in &ids {
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            manager.push(*id, &mixed[lo..hi], &t).unwrap();
        }
    }
    for (id, _, _) in &ids {
        manager.close(*id).unwrap();
    }
    dhf::obs::set_enabled(false);

    let telemetry = manager.telemetry();
    let stages = telemetry.stage_breakdown();
    assert!(!stages.is_empty(), "traced run must fill the stage breakdown");
    assert!(stages.stage(dhf::obs::Stage::EngineRun).count() > 0);
    let prom = telemetry.prometheus();
    assert!(prom.contains("dhf_samples_out_total"), "exposition:\n{prom}");
    assert!(prom.contains("dhf_stage_seconds"), "exposition:\n{prom}");
}
