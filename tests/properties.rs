//! Property-based tests on the core invariants, spanning crates.

use dhf::core::PatternAligner;
use dhf::dsp::fft::{fft, ifft, FftPlanner};
use dhf::dsp::stft::{istft, stft, StftConfig};
use dhf::dsp::window::{cola_deviation, WindowKind};
use dhf::dsp::Complex;
use dhf::metrics::{average_mse, average_sdr_db, mse, sdr_db};
use dhf::synth::{PeriodSchedule, QuasiPeriodicSource, Template};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFT round trip is the identity for arbitrary signals and lengths
    /// (radix-2 and Bluestein paths alike).
    #[test]
    fn fft_round_trip(len in 2usize..300, seed in 0u64..1000) {
        let x: Vec<Complex> = (0..len)
            .map(|i| {
                let v = ((i as u64).wrapping_mul(seed + 1) % 1000) as f64 / 500.0 - 1.0;
                Complex::new(v, -0.5 * v)
            })
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// Packed real FFT round trip: `irfft(rfft(x)) == x` to ≤1e-9 for
    /// arbitrary real signals across power-of-two, even, odd, and prime
    /// lengths (the odd path exercises the Bluestein fallback).
    #[test]
    fn rfft_round_trip(choice in 0usize..12, seed in 0u64..1000) {
        // Explicit roster so every structural case is hit: pow2, even
        // non-pow2, odd composite, and primes.
        let len = [2usize, 4, 8, 256, 6, 30, 100, 9, 45, 7, 127, 251][choice];
        let x: Vec<f64> = (0..len)
            .map(|i| (((i as u64).wrapping_mul(seed + 7)) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let mut planner = FftPlanner::new();
        let mut half = Vec::new();
        planner.rfft_into(&x, &mut half);
        prop_assert_eq!(half.len(), len / 2 + 1);
        let mut back = Vec::new();
        planner.irfft_into(&half, len, &mut back);
        prop_assert_eq!(back.len(), len);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-9, "len {}: {} vs {}", len, a, b);
        }
    }

    /// The packed real path agrees with the full complex transform
    /// (promote to complex, transform, take the half spectrum) to ≤1e-9 —
    /// the equivalence that justified deleting the promotion branch.
    #[test]
    fn rfft_matches_full_complex_fft(choice in 0usize..12, seed in 0u64..1000) {
        let len = [2usize, 4, 8, 256, 6, 30, 100, 9, 45, 7, 127, 251][choice];
        let x: Vec<f64> = (0..len)
            .map(|i| (((i as u64).wrapping_mul(3 * seed + 11)) % 997) as f64 / 498.5 - 1.0)
            .collect();
        let mut planner = FftPlanner::new();
        let mut half = Vec::new();
        planner.rfft_into(&x, &mut half);
        let full = fft(&x.iter().map(|&v| Complex::from_real(v)).collect::<Vec<_>>());
        for (k, (a, b)) in half.iter().zip(&full).enumerate() {
            prop_assert!((*a - *b).abs() <= 1e-9, "len {} bin {}: {} vs {}", len, k, a, b);
        }
    }

    /// Parseval: FFT preserves energy (up to 1/N convention).
    #[test]
    fn fft_parseval(len in 2usize..200, seed in 0u64..1000) {
        let x: Vec<Complex> = (0..len)
            .map(|i| Complex::from_real((((i as u64) * (seed + 3)) % 97) as f64 / 48.5 - 1.0))
            .collect();
        let spec = fft(&x);
        let et: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / len as f64;
        prop_assert!((et - ef).abs() < 1e-6 * et.max(1.0));
    }

    /// Hann and rectangular windows satisfy COLA at every hop that evenly
    /// divides half the window — the precondition the ISTFT relies on.
    #[test]
    fn window_cola_at_dividing_hops(exp in 5u32..10, div in 1u32..4) {
        let len = 1usize << exp;           // 32..512
        let hop = len >> div;              // len/2, len/4, len/8
        let hann = WindowKind::Hann.samples(len);
        prop_assert!(
            cola_deviation(&hann, hop) < 1e-12,
            "Hann len {} hop {} deviates", len, hop
        );
        let rect = WindowKind::Rectangular.samples(len);
        prop_assert!(
            cola_deviation(&rect, hop) < 1e-12,
            "Rect len {} hop {} deviates", len, hop
        );
    }

    /// STFT → ISTFT is a perfect interior reconstruction for *any* COLA
    /// window/hop combination, not just the pipeline default.
    #[test]
    fn stft_istft_perfect_reconstruction(exp in 5u32..9, div in 2u32..4, seed in 0u64..500) {
        let window = 1usize << exp;        // 32..256
        let hop = window >> div;           // window/4 or window/8
        let n = window * 10;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.061 + seed as f64).sin()
                    + 0.4 * (t * 0.173).cos()
                    + 0.1 * ((i as u64).wrapping_mul(seed + 11) % 997) as f64 / 997.0
            })
            .collect();
        let cfg = StftConfig::new(window, hop, 40.0).unwrap();
        let spec = stft(&x, &cfg).unwrap();
        let y = istft(&spec);
        prop_assert_eq!(y.len(), n);
        for i in window..n - window {
            prop_assert!(
                (x[i] - y[i]).abs() < 1e-8,
                "window {} hop {} sample {}: {} vs {}", window, hop, i, x[i], y[i]
            );
        }
    }

    /// STFT → ISTFT reconstructs the interior exactly for COLA configs.
    #[test]
    fn stft_round_trip(seed in 0u64..500) {
        let fs = 50.0;
        let n = 1200;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.07 + seed as f64).sin() + 0.3 * (t * 0.19).cos()
            })
            .collect();
        let cfg = StftConfig::new(128, 32, fs).unwrap();
        let spec = stft(&x, &cfg).unwrap();
        let y = istft(&spec);
        for i in 128..n - 128 {
            prop_assert!((x[i] - y[i]).abs() < 1e-8, "sample {}", i);
        }
    }

    /// Unwarp/restore round trip approximates the identity for smooth
    /// quasi-periodic signals and arbitrary schedules.
    #[test]
    fn pattern_alignment_round_trip(seed in 0u64..200) {
        let fs = 100.0;
        let n = 3000;
        let f_lo = 0.8 + (seed % 7) as f64 * 0.1;
        let f_hi = f_lo + 0.4;
        let track: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                f_lo + (f_hi - f_lo) * 0.5 * (1.0 + (std::f64::consts::TAU * x).sin())
            })
            .collect();
        let mut phase = 0.0;
        let signal: Vec<f64> = track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                phase.sin()
            })
            .collect();
        let aligner = PatternAligner::new(&track, fs, 32.0).unwrap();
        let un = aligner.unwarp(&signal).unwrap();
        let back = aligner.restore(&un).unwrap();
        let mut err = 0.0;
        for i in 200..n - 300 {
            err += (back[i] - signal[i]).abs();
        }
        let mean_err = err / (n - 500) as f64;
        prop_assert!(mean_err < 0.05, "mean error {}", mean_err);
    }

    /// Rendered sources respect their schedule's frequency band.
    #[test]
    fn rendered_f0_stays_in_band(seed in 0u64..300) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let f_min = 0.9;
        let f_max = 2.1;
        let sched = PeriodSchedule::random(20.0, f_min, f_max, 0.5, 0.1, &mut rng);
        let sig = QuasiPeriodicSource::new(Template::Ppg, sched).render(100.0, 2000);
        prop_assert!(sig.f0.iter().all(|&f| f >= f_min - 1e-9 && f <= f_max + 1e-9));
    }

    /// SDR is shift-sensitive but exact-match is infinite, and adding
    /// noise can only lower it.
    #[test]
    fn sdr_monotone_in_noise(amp1 in 0.01f64..0.2, amp2 in 0.3f64..1.0) {
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.2).sin()).collect();
        let noisy = |a: f64| -> Vec<f64> {
            x.iter().enumerate().map(|(i, &v)| v + a * ((i % 13) as f64 - 6.0) / 6.0).collect()
        };
        let clean_sdr = sdr_db(&x, &noisy(amp1));
        let dirty_sdr = sdr_db(&x, &noisy(amp2));
        prop_assert!(clean_sdr > dirty_sdr);
    }

    /// The paper's aggregation rules: linear-scale SDR average lies
    /// between min and max; geometric MSE mean is between min and max.
    #[test]
    fn aggregation_bounds(a in -10.0f64..30.0, b in -10.0f64..30.0) {
        let avg = average_sdr_db(&[a, b]);
        prop_assert!(avg >= a.min(b) - 1e-9 && avg <= a.max(b) + 1e-9);
        let ma = 10f64.powf(a / 10.0) * 1e-4;
        let mb = 10f64.powf(b / 10.0) * 1e-4;
        let gm = average_mse(&[ma, mb]);
        prop_assert!(gm >= ma.min(mb) - 1e-12 && gm <= ma.max(mb) + 1e-12);
    }

    /// MSE of an estimate equals MSE of the reference against it
    /// (symmetry) and is zero iff identical.
    #[test]
    fn mse_symmetry(seed in 0u64..100) {
        let x: Vec<f64> = (0..64).map(|i| ((i as u64 + seed) % 17) as f64 / 8.0).collect();
        let y: Vec<f64> = (0..64).map(|i| ((i as u64 * 3 + seed) % 19) as f64 / 9.0).collect();
        prop_assert!((mse(&x, &y) - mse(&y, &x)).abs() < 1e-12);
        prop_assert_eq!(mse(&x, &x), 0.0);
    }
}
