//! Cross-crate integration: Table-1 synthesis → band-limiting → DHF and
//! baseline separation → metric evaluation, exercising the same path as
//! the Table-2 bench at test-sized budgets.

use dhf::baselines::{masking::SpectralMasking, SeparationContext, Separator};
use dhf::core::{separate, DhfConfig};
use dhf::dsp::filter::band_limit;
use dhf::metrics::{sdr_db, si_sdr_db};
use dhf::synth::table1;

fn fast_cfg() -> DhfConfig {
    let mut cfg = DhfConfig::fast();
    cfg.inpaint.iterations = 60;
    cfg
}

#[test]
fn dhf_separates_msig1_better_than_identity() {
    let mix = table1::mixed_signal_with_duration(1, 7, 45.0);
    let observed = band_limit(&mix.samples, mix.fs, 12.0).unwrap();
    let tracks = mix.f0_tracks();
    let result = separate(&observed, mix.fs, &tracks, &fast_cfg()).unwrap();

    let lo = (5.0 * mix.fs) as usize;
    let hi = mix.samples.len() - lo;
    for (i, truth) in mix.sources.iter().enumerate() {
        let est_sdr = si_sdr_db(&truth.samples[lo..hi], &result.sources[i][lo..hi]);
        let mix_sdr = si_sdr_db(&truth.samples[lo..hi], &observed[lo..hi]);
        assert!(
            est_sdr > mix_sdr,
            "source {i}: DHF {est_sdr:.2} dB must beat mix-as-estimate {mix_sdr:.2} dB"
        );
    }
}

#[test]
fn dhf_and_masking_agree_on_source_count_and_length() {
    let mix = table1::mixed_signal_with_duration(4, 3, 40.0);
    let observed = band_limit(&mix.samples, mix.fs, 12.0).unwrap();
    let tracks = mix.f0_tracks();

    let dhf = separate(&observed, mix.fs, &tracks, &fast_cfg()).unwrap();
    let ctx = SeparationContext { fs: mix.fs, f0_tracks: &tracks };
    let masking = SpectralMasking::default().separate(&observed, &ctx).unwrap();

    assert_eq!(dhf.sources.len(), 3);
    assert_eq!(masking.len(), 3);
    for (d, m) in dhf.sources.iter().zip(&masking) {
        assert_eq!(d.len(), mix.samples.len());
        assert_eq!(m.len(), mix.samples.len());
    }
    // One round per source, each with masking diagnostics.
    assert_eq!(dhf.rounds.len(), 3);
    for r in &dhf.rounds {
        assert!(r.hidden_fraction > 0.0, "every round must conceal something");
        assert!(r.hidden_fraction < 0.95, "masks must not conceal everything");
    }
}

#[test]
fn residual_after_peeling_all_sources_is_small() {
    // The sum of the estimates plus the final residual reconstructs the
    // observation by construction; check the estimates actually absorb
    // most of the signal energy (no silent failure of any round).
    let mix = table1::mixed_signal_with_duration(2, 11, 40.0);
    let observed = band_limit(&mix.samples, mix.fs, 12.0).unwrap();
    let tracks = mix.f0_tracks();
    let result = separate(&observed, mix.fs, &tracks, &fast_cfg()).unwrap();

    let lo = (5.0 * mix.fs) as usize;
    let hi = mix.samples.len() - lo;
    let mut residual_energy = 0.0;
    let mut observed_energy = 0.0;
    for i in lo..hi {
        let est_sum: f64 = result.sources.iter().map(|s| s[i]).sum();
        residual_energy += (observed[i] - est_sum) * (observed[i] - est_sum);
        observed_energy += observed[i] * observed[i];
    }
    assert!(
        residual_energy < 0.8 * observed_energy,
        "residual keeps {:.0}% of the energy",
        100.0 * residual_energy / observed_energy
    );
}

#[test]
fn deterministic_given_seeds() {
    let mix = table1::mixed_signal_with_duration(1, 5, 30.0);
    let observed = band_limit(&mix.samples, mix.fs, 12.0).unwrap();
    let tracks = mix.f0_tracks();
    let a = separate(&observed, mix.fs, &tracks, &fast_cfg()).unwrap();
    let b = separate(&observed, mix.fs, &tracks, &fast_cfg()).unwrap();
    assert_eq!(a.sources, b.sources, "separation must be reproducible");
}

#[test]
fn all_six_baselines_run_on_a_table1_mix() {
    use dhf::baselines::{emd::Emd, nmf::Nmf, repet::Repet, repet::RepetExtended, vmd::Vmd};
    let mix = table1::mixed_signal_with_duration(1, 9, 40.0);
    let observed = band_limit(&mix.samples, mix.fs, 12.0).unwrap();
    let tracks = mix.f0_tracks();
    let ctx = SeparationContext { fs: mix.fs, f0_tracks: &tracks };
    let methods: Vec<Box<dyn Separator>> = vec![
        Box::new(Emd::default()),
        Box::new(Vmd::default()),
        Box::new(Nmf::default()),
        Box::new(Repet::default()),
        Box::new(RepetExtended::default()),
        Box::new(SpectralMasking::default()),
    ];
    for m in methods {
        let est = m.separate(&observed, &ctx).unwrap_or_else(|e| {
            panic!("{} failed: {e}", m.name());
        });
        assert_eq!(est.len(), 2, "{}", m.name());
        assert!(est.iter().all(|s| s.len() == observed.len()), "{}", m.name());
        // Estimates are finite.
        assert!(
            est.iter().flatten().all(|v| v.is_finite()),
            "{} produced non-finite samples",
            m.name()
        );
    }
}

#[test]
fn sdr_ranking_is_meaningful_on_disjoint_tones() {
    // Sanity across metrics + masking: spectrally disjoint sources are
    // separated nearly perfectly, and SDR reflects it.
    let fs = 100.0;
    let n = 4000;
    let s1: Vec<f64> =
        (0..n).map(|i| (std::f64::consts::TAU * 1.0 * i as f64 / fs).sin()).collect();
    let s2: Vec<f64> =
        (0..n).map(|i| 0.5 * (std::f64::consts::TAU * 3.3 * i as f64 / fs).sin()).collect();
    let mixed: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    let tracks = vec![vec![1.0; n], vec![3.3; n]];
    let ctx = SeparationContext { fs, f0_tracks: &tracks };
    let est = SpectralMasking::default().separate(&mixed, &ctx).unwrap();
    let sdr1 = sdr_db(&s1[500..3500], &est[0][500..3500]);
    let sdr2 = sdr_db(&s2[500..3500], &est[1][500..3500]);
    assert!(sdr1 > 10.0 && sdr2 > 10.0, "disjoint tones: {sdr1:.1}/{sdr2:.1} dB");
}
