//! End-to-end oximetry regression: a synthesized desaturation-event
//! recording runs through the full workload — dual-wavelength mixture →
//! per-wavelength DHF separation → paired fetal estimates → windowed
//! modulation ratios → calibrated SpO2 trend — and the recovered trend is
//! bounded against the simulator's ground-truth SaO2 schedule, offline
//! and streamed.
//!
//! Calibration follows the paper's Figure-6 evaluation: the Eq. 10
//! inverse-linear model is fitted against ground truth *per pipeline
//! configuration* (offline and chunked separation compress the ratio
//! swing by different linear factors — in vivo, the per-deployment
//! calibration absorbs exactly this), then scored on its own
//! predictions. All tolerances are calibrated against the seeded
//! recording below; everything downstream of the seed is deterministic.

use dhf::core::DhfConfig;
use dhf::metrics::pearson;
use dhf::oximetry::{
    estimate_spo2_trend, Calibration, OximetryConfig, Spo2Sample, StreamingOximeter,
};
use dhf::stream::StreamingConfig;
use dhf::synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};

const BASELINE: f64 = 0.55;
const NADIR: f64 = 0.35;
const DURATION_S: f64 = 240.0;

fn recording() -> dhf::synth::invivo::TfoRecording {
    generate(&DualWaveConfig::new(Spo2Scenario::desaturation(BASELINE, NADIR), DURATION_S))
}

/// The deterministic in-painter: at these budgets it recovers the
/// modulation ratio more stably than the fast deep prior, and it keeps
/// the regression seconds-fast (see `paper_shapes.rs` for where the deep
/// prior is required instead).
fn pipeline_cfg() -> DhfConfig {
    DhfConfig::fast().with_harmonic_interp()
}

fn trend_cfg(fs: f64) -> OximetryConfig {
    OximetryConfig::new(1, (30.0 * fs) as usize, (10.0 * fs) as usize, Calibration::default())
        .unwrap()
}

/// Ground-truth SaO2 averaged over each trend window.
fn windowed_truth(samples: &[Spo2Sample], sao2: &[f64]) -> Vec<f64> {
    samples
        .iter()
        .map(|s| sao2[s.start..s.start + s.len].iter().sum::<f64>() / s.len as f64)
        .collect()
}

/// Fits the Eq. 10 calibration on the trend's own ratios against ground
/// truth and returns the calibrated predictions (the Figure-6 protocol).
fn calibrated(samples: &[Spo2Sample], sao2: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let ratios: Vec<f64> = samples.iter().map(|s| s.ratio).collect();
    let truth = windowed_truth(samples, sao2);
    let cal = Calibration::fit(&ratios, &truth);
    (cal.predict_many(&ratios), truth)
}

fn mean_abs_err(pred: &[f64], truth: &[f64]) -> f64 {
    pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / pred.len() as f64
}

/// The recording's nadir plateau in samples: `[0.45·T, 0.55·T]`.
fn nadir_interval(fs: f64) -> (usize, usize) {
    ((0.45 * DURATION_S * fs) as usize, (0.55 * DURATION_S * fs) as usize)
}

fn streamed_trend(rec: &dhf::synth::invivo::TfoRecording) -> Vec<Spo2Sample> {
    let fs = rec.config.fs;
    let n = rec.len();
    let scfg = StreamingConfig::new(3000, 600, pipeline_cfg()).unwrap();
    let mut ox = StreamingOximeter::new(fs, 2, scfg, trend_cfg(fs)).unwrap();
    let mut live = Vec::new();
    for lo in (0..n).step_by(250) {
        let hi = (lo + 250).min(n);
        let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
        live.extend(ox.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &t).unwrap());
    }
    let fin = ox.flush().unwrap();
    assert_eq!(fin.dropped_samples, 0, "the flush must cover the whole recording");
    live.extend(fin.samples);
    live
}

#[test]
fn offline_trend_tracks_the_desaturation_event() {
    let rec = recording();
    let fs = rec.config.fs;
    let trend = estimate_spo2_trend(
        [&rec.mixed[0], &rec.mixed[1]],
        fs,
        &[rec.f0.maternal.clone(), rec.f0.fetal.clone()],
        &pipeline_cfg(),
        &trend_cfg(fs),
    )
    .unwrap();
    let expected = (rec.len() - trend_cfg(fs).trend_window) / trend_cfg(fs).trend_hop + 1;
    assert_eq!(trend.samples.len(), expected, "the trend must cover the recording");

    let (pred, truth) = calibrated(&trend.samples, &rec.sao2);
    let mae = mean_abs_err(&pred, &truth);
    let corr = pearson(&pred, &truth);
    // Calibrated against measurements of 0.031 / 0.885 on this seed.
    assert!(mae < 0.05, "offline mean |SpO2 err| {mae:.4} out of tolerance");
    assert!(corr > 0.80, "offline SpO2 correlation {corr:.3} out of tolerance");

    // The event itself is recovered: the trend minimum is deep and its
    // window overlaps the programmed nadir plateau.
    let (i_min, &min) =
        pred.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
    assert!(min < BASELINE - 0.1, "trend minimum {min:.3} misses the desaturation");
    let w = &trend.samples[i_min];
    let (lo, hi) = nadir_interval(fs);
    assert!(
        w.start < hi && w.start + w.len > lo,
        "minimum window [{}, {}) misses the nadir interval [{lo}, {hi})",
        w.start,
        w.start + w.len,
    );
}

#[test]
fn streamed_trend_tracks_ground_truth_and_agrees_with_offline() {
    let rec = recording();
    let fs = rec.config.fs;
    let live = streamed_trend(&rec);

    let (pred, truth) = calibrated(&live, &rec.sao2);
    let mae = mean_abs_err(&pred, &truth);
    let corr = pearson(&pred, &truth);
    // Calibrated against measurements of 0.034 / 0.838 on this seed.
    assert!(mae < 0.055, "streamed mean |SpO2 err| {mae:.4} out of tolerance");
    assert!(corr > 0.75, "streamed SpO2 correlation {corr:.3} out of tolerance");
    let (i_min, &min) =
        pred.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
    assert!(min < BASELINE - 0.1, "streamed minimum {min:.3} misses the desaturation");
    let w = &live[i_min];
    let (lo, hi) = nadir_interval(fs);
    assert!(
        w.start < hi && w.start + w.len > lo,
        "streamed minimum window [{}, {}) misses the nadir interval [{lo}, {hi})",
        w.start,
        w.start + w.len,
    );

    // Streaming-vs-offline agreement: identical window grid, and the two
    // calibrated trends stay close window by window (measured mean
    // 0.044, max 0.111 on this seed).
    let offline = estimate_spo2_trend(
        [&rec.mixed[0], &rec.mixed[1]],
        fs,
        &[rec.f0.maternal.clone(), rec.f0.fetal.clone()],
        &pipeline_cfg(),
        &trend_cfg(fs),
    )
    .unwrap();
    assert_eq!(live.len(), offline.samples.len());
    for (l, o) in live.iter().zip(&offline.samples) {
        assert_eq!((l.start, l.len), (o.start, o.len), "window grids must match");
    }
    let (pred_off, _) = calibrated(&offline.samples, &rec.sao2);
    let gaps: Vec<f64> = pred.iter().zip(&pred_off).map(|(a, b)| (a - b).abs()).collect();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let max_gap = gaps.iter().cloned().fold(0.0, f64::max);
    assert!(mean_gap < 0.07, "streaming-offline mean gap {mean_gap:.4} out of tolerance");
    assert!(max_gap < 0.17, "streaming-offline max gap {max_gap:.4} out of tolerance");
}

/// Warm-started deep-prior streaming must hold the Figure-6 SpO2 error
/// within a bounded gap of the cold deep-prior path: carrying weights
/// across chunks buys latency, not trend accuracy.
#[test]
fn warm_started_deep_prior_trend_matches_cold_within_gap() {
    // A shorter event keeps the (two-run, deep-prior) regression cheap
    // while still spanning baseline → nadir → recovery.
    let rec = generate(&DualWaveConfig::new(Spo2Scenario::desaturation(BASELINE, NADIR), 120.0));
    let fs = rec.config.fs;
    let n = rec.len();

    let run = |warm: bool| -> (Vec<Spo2Sample>, u64, u64) {
        let mut dhf = DhfConfig::fast();
        dhf.inpaint.warm = None; // pin cold regardless of DHF_WARM_START
        let mut scfg = StreamingConfig::new(3000, 600, dhf).unwrap();
        if warm {
            scfg = scfg.with_warm_start();
        }
        let mut ox = StreamingOximeter::new(fs, 2, scfg, trend_cfg(fs)).unwrap();
        let mut live = Vec::new();
        for lo in (0..n).step_by(250) {
            let hi = (lo + 250).min(n);
            let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
            live.extend(ox.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &t).unwrap());
        }
        let (hits, colds) = (ox.warm_hits(), ox.cold_fits());
        let fin = ox.flush().unwrap();
        assert_eq!(fin.dropped_samples, 0);
        live.extend(fin.samples);
        (live, hits, colds)
    };

    let (cold_trend, cold_hits, _) = run(false);
    let (warm_trend, warm_hits, warm_colds) = run(true);
    assert_eq!(cold_hits, 0, "the cold run must never resume weights");
    assert!(warm_hits > 0, "the warm run must actually resume weights");
    assert!(warm_colds >= 2, "each wavelength channel cold-starts its first chunk");

    let (cold_pred, cold_truth) = calibrated(&cold_trend, &rec.sao2);
    let (warm_pred, warm_truth) = calibrated(&warm_trend, &rec.sao2);
    let cold_mae = mean_abs_err(&cold_pred, &cold_truth);
    let warm_mae = mean_abs_err(&warm_pred, &warm_truth);
    // Measured on this seed: cold 0.0415, warm 0.0583 — the bounded
    // fine-tune gives up ~0.017 MAE against scratch fits here, inside
    // the allowed 0.02 gap.
    assert!(warm_mae < 0.08, "warm deep-prior SpO2 MAE {warm_mae:.4} out of tolerance");
    assert!(
        warm_mae < cold_mae + 0.02,
        "warm MAE {warm_mae:.4} regressed more than 0.02 past cold MAE {cold_mae:.4}"
    );
}

#[test]
fn constant_scenario_trend_is_bounded() {
    // The null case: no event is programmed. Two claims, separated by
    // where the error can come from.
    let rec = generate(&DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.5 }, 120.0));
    let fs = rec.config.fs;
    let max_rel = |ratios: &[f64]| {
        let mean_r = ratios.iter().sum::<f64>() / ratios.len() as f64;
        ratios.iter().map(|r| (r / mean_r - 1.0).abs()).fold(0.0, f64::max)
    };

    // (1) The trend machinery itself is flat on ground-truth fetal
    // components: windowing, AC/DC extraction, and the ratio add no
    // wander of their own.
    let oracle = dhf::oximetry::spo2_trend_from_components(
        [&rec.fetal_truth[0], &rec.fetal_truth[1]],
        [&rec.mixed[0], &rec.mixed[1]],
        &trend_cfg(fs),
    )
    .unwrap();
    let oracle_rel = max_rel(&oracle.iter().map(|s| s.ratio).collect::<Vec<_>>());
    assert!(oracle_rel < 0.02, "oracle ratio wander {oracle_rel:.4} — trend math is not flat");

    // (2) The separated trend wanders with residual interference leakage
    // (the separator's nonlinear response to the drifting harmonic
    // geometry differs between the two channels' fetal-to-maternal
    // weights — inherent to imperfect separation, and exactly why the
    // paper scores SpO2 through separation quality). Regression-bound it
    // on this seed: measured max 0.135.
    let trend = estimate_spo2_trend(
        [&rec.mixed[0], &rec.mixed[1]],
        fs,
        &[rec.f0.maternal.clone(), rec.f0.fetal.clone()],
        &pipeline_cfg(),
        &trend_cfg(fs),
    )
    .unwrap();
    let sep_rel = max_rel(&trend.ratios());
    assert!(sep_rel < 0.20, "separated ratio wander {sep_rel:.4} regressed");
}
