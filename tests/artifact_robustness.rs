//! End-to-end motion-artifact robustness: the seeded desaturation
//! recording of `oximetry_e2e.rs` is contaminated with each artifact
//! family from `dhf_synth::artifact` and streamed through the full
//! oximetry workload, with and without the HPSS transient-rejection
//! front filter.
//!
//! Two properties are locked down per family:
//!
//! 1. **Graceful degradation** — without the filter, the calibrated SpO2
//!    trend MAE stays within a checked-in ceiling (the artifact hurts but
//!    does not destroy the trend).
//! 2. **Filter recovery** — with the front filter enabled, the
//!    gait-artifact MAE improves by a measured margin and lands within a
//!    bounded gap of the clean-signal MAE.
//!
//! All floors are calibrated against the seeds below on the fast
//! pipeline; the full-config variants (`--ignored`) re-run the gait
//! experiment at `DhfConfig::default()` budgets. Calibration follows the
//! Figure-6 protocol of `oximetry_e2e.rs`: Eq. 10 fitted per
//! configuration on the trend's own ratios, then scored on its own
//! predictions.

use dhf::core::DhfConfig;
use dhf::oximetry::{Calibration, OximetryConfig, Spo2Sample, StreamingOximeter};
use dhf::stream::{HpssFrontConfig, StreamingConfig};
use dhf::synth::artifact::{self, ArtifactConfig};
use dhf::synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};
use dhf::synth::invivo::TfoRecording;

const BASELINE: f64 = 0.55;
const NADIR: f64 = 0.35;
const DURATION_S: f64 = 240.0;
const ARTIFACT_SEED: u64 = 23;

fn recording() -> TfoRecording {
    generate(&DualWaveConfig::new(Spo2Scenario::desaturation(BASELINE, NADIR), DURATION_S))
}

fn contaminated(cfg: &ArtifactConfig) -> TfoRecording {
    let mut rec = recording();
    artifact::apply(&mut rec, cfg);
    rec
}

fn pipeline_cfg() -> DhfConfig {
    DhfConfig::fast().with_harmonic_interp()
}

fn trend_cfg(fs: f64) -> OximetryConfig {
    OximetryConfig::new(1, (30.0 * fs) as usize, (10.0 * fs) as usize, Calibration::default())
        .unwrap()
}

/// Streams the recording through the oximeter, optionally with the HPSS
/// front filter, and returns the trend samples.
fn streamed_trend(
    rec: &TfoRecording,
    dhf: DhfConfig,
    front: Option<HpssFrontConfig>,
) -> Vec<Spo2Sample> {
    let fs = rec.config.fs;
    let n = rec.len();
    let mut scfg = StreamingConfig::new(3000, 600, dhf).unwrap();
    if let Some(f) = front {
        scfg = scfg.with_hpss_front(f);
    }
    let mut ox = StreamingOximeter::new(fs, 2, scfg, trend_cfg(fs)).unwrap();
    let mut live = Vec::new();
    for lo in (0..n).step_by(250) {
        let hi = (lo + 250).min(n);
        let t: [&[f64]; 2] = [&rec.f0.maternal[lo..hi], &rec.f0.fetal[lo..hi]];
        live.extend(ox.push([&rec.mixed[0][lo..hi], &rec.mixed[1][lo..hi]], &t).unwrap());
    }
    let fin = ox.flush().unwrap();
    assert_eq!(fin.dropped_samples, 0, "the flush must cover the whole recording");
    live.extend(fin.samples);
    live
}

/// Calibrated SpO2 trend MAE against the windowed ground-truth schedule
/// (the Figure-6 protocol).
fn trend_mae(samples: &[Spo2Sample], sao2: &[f64]) -> f64 {
    let ratios: Vec<f64> = samples.iter().map(|s| s.ratio).collect();
    let truth: Vec<f64> = samples
        .iter()
        .map(|s| sao2[s.start..s.start + s.len].iter().sum::<f64>() / s.len as f64)
        .collect();
    let cal = Calibration::fit(&ratios, &truth);
    let pred = cal.predict_many(&ratios);
    pred.iter().zip(&truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / pred.len() as f64
}

/// MAE of a recording streamed at the given configs.
fn mae_for(rec: &TfoRecording, dhf: DhfConfig, front: Option<HpssFrontConfig>) -> f64 {
    trend_mae(&streamed_trend(rec, dhf, front), &rec.sao2)
}

/// The gait demonstration scenario: sharp (20 ms ring-down), regular
/// (8 % timing jitter) foot strikes at 0.1 DC amplitude. Short decays
/// make each impact broadband — the shape HPSS separates best — where the
/// default softer strikes smear across enough frames to look harmonic.
fn gait_scenario() -> ArtifactConfig {
    let mut cfg = ArtifactConfig::gait(DURATION_S, ARTIFACT_SEED);
    let g = cfg.gait.as_mut().unwrap();
    g.amplitude = 0.1;
    g.decay_s = 0.02;
    g.jitter = 0.08;
    cfg
}

/// The front-filter configuration the gait scenario is demonstrated with:
/// default mask shaping over a shorter 0.64 s window, matching the impact
/// ring-down instead of the spike/wander-tuned 1.28 s default.
fn gait_front() -> HpssFrontConfig {
    HpssFrontConfig { window_len: 64, hop: 16, ..HpssFrontConfig::default() }
}

// Measured MAEs on the seeds above (fast pipeline, 2026-08): clean
// 0.0340; spikes off 0.0605 / on 0.0438 (default front); wander off
// 0.0341 / on 0.0286 (default front); gait off 0.0582 / on 0.0446
// (gait front). The margins are seed-dependent (the pipeline is
// deterministic, so these floors are exact regressions, not statistical
// claims — see `report_seed_sweep` for the spread).
const CLEAN_MAE_CEILING: f64 = 0.045;

#[test]
fn clean_trend_stays_accurate_with_filter_off() {
    let rec = recording();
    let mae = mae_for(&rec, pipeline_cfg(), None);
    assert!(mae < CLEAN_MAE_CEILING, "clean-signal trend MAE regressed: {mae:.4}");
}

#[test]
fn spikes_degrade_gracefully_and_recover_with_hpss() {
    let clean_mae = mae_for(&recording(), pipeline_cfg(), None);
    let rec = contaminated(&ArtifactConfig::spikes(ARTIFACT_SEED));
    let off = mae_for(&rec, pipeline_cfg(), None);
    assert!(off < 0.075, "spike degradation blew past its ceiling: {off:.4}");
    assert!(
        off < 2.5 * clean_mae,
        "spikes must degrade gracefully: {off:.4} vs clean {clean_mae:.4}"
    );
    let on = mae_for(&rec, pipeline_cfg(), Some(HpssFrontConfig::default()));
    assert!(on < 0.85 * off, "HPSS must recover spike MAE by a margin: {on:.4} vs {off:.4}");
    assert!(
        on < clean_mae + 0.015,
        "filtered spike MAE must land near clean: {on:.4} vs clean {clean_mae:.4}"
    );
}

#[test]
fn wander_degrades_gracefully_and_recovers_with_hpss() {
    let clean_mae = mae_for(&recording(), pipeline_cfg(), None);
    let rec = contaminated(&ArtifactConfig::wander(ARTIFACT_SEED));
    let off = mae_for(&rec, pipeline_cfg(), None);
    assert!(off < 0.045, "wander degradation blew past its ceiling: {off:.4}");
    assert!(
        off < 2.5 * clean_mae,
        "wander must degrade gracefully: {off:.4} vs clean {clean_mae:.4}"
    );
    let on = mae_for(&rec, pipeline_cfg(), Some(HpssFrontConfig::default()));
    assert!(on < off, "HPSS must not hurt the wander scenario: {on:.4} vs {off:.4}");
    assert!(
        on < clean_mae + 0.010,
        "filtered wander MAE must land near clean: {on:.4} vs clean {clean_mae:.4}"
    );
}

/// The headline acceptance criterion: under the gait-periodic artifact
/// the streamed SpO2 trend MAE improves by a measured, asserted margin
/// with the HPSS front filter on vs off, and lands within a bounded gap
/// of the clean-signal MAE.
#[test]
fn gait_mae_improves_by_margin_with_hpss_front() {
    let clean_mae = mae_for(&recording(), pipeline_cfg(), None);
    let rec = contaminated(&gait_scenario());
    let off = mae_for(&rec, pipeline_cfg(), None);
    assert!(off < 0.072, "gait degradation blew past its ceiling: {off:.4}");
    assert!(
        off < 2.5 * clean_mae,
        "gait must degrade gracefully: {off:.4} vs clean {clean_mae:.4}"
    );
    let on = mae_for(&rec, pipeline_cfg(), Some(gait_front()));
    assert!(
        on < 0.85 * off,
        "HPSS must recover gait MAE by a measured margin: {on:.4} vs {off:.4}"
    );
    assert!(
        on < clean_mae + 0.020,
        "filtered gait MAE must stay within a bounded gap of clean: {on:.4} vs {clean_mae:.4}"
    );
}

/// Scenario determinism: the same seed yields bit-identical artifact
/// waveforms across repeated renders and under the forced-scalar SIMD
/// fallback, and distinct seeds actually vary the draw.
#[test]
fn artifact_waveforms_are_seed_deterministic_across_dispatch() {
    struct AutoDispatch;
    impl Drop for AutoDispatch {
        fn drop(&mut self) {
            dhf::dsp::simd::force_scalar(false);
        }
    }
    let (fs, n) = (100.0, 9000);
    for cfg in [
        ArtifactConfig::spikes(ARTIFACT_SEED),
        ArtifactConfig::wander(ARTIFACT_SEED),
        ArtifactConfig::gait(n as f64 / fs, ARTIFACT_SEED),
    ] {
        let a = artifact::waveform(&cfg, n, fs);
        let b = artifact::waveform(&cfg, n, fs);
        assert_eq!(a, b, "{}: repeated render must be bit-identical", cfg.family_name());

        let _auto = AutoDispatch;
        dhf::dsp::simd::force_scalar(true);
        let c = artifact::waveform(&cfg, n, fs);
        drop(_auto);
        assert_eq!(a, c, "{}: forced-scalar render must be bit-identical", cfg.family_name());

        let mut other = cfg.clone();
        other.seed ^= 0x5EED;
        assert_ne!(
            a,
            artifact::waveform(&other, n, fs),
            "{}: different seeds must draw different waveforms",
            cfg.family_name()
        );
    }
}

/// Full-budget variant of the gait demonstration
/// (`DhfConfig::default()`), kept behind `--ignored` so tier-1 stays
/// fast; the CI release job runs it explicitly. Measured at the full
/// config: clean 0.0224, gait off 0.0492, gait on 0.0445.
#[test]
#[ignore = "full-config budgets; run with --ignored in the release job"]
fn gait_mae_improves_with_hpss_front_at_full_config() {
    let clean_mae = mae_for(&recording(), DhfConfig::default().with_harmonic_interp(), None);
    let rec = contaminated(&gait_scenario());
    let off = mae_for(&rec, DhfConfig::default().with_harmonic_interp(), None);
    let on = mae_for(&rec, DhfConfig::default().with_harmonic_interp(), Some(gait_front()));
    println!("full config: clean={clean_mae:.4} off={off:.4} on={on:.4}");
    assert!(off < 2.5 * clean_mae, "gait must degrade gracefully: {off:.4} vs {clean_mae:.4}");
    assert!(on < 0.95 * off, "HPSS must recover gait MAE: {on:.4} vs {off:.4}");
    assert!(on < clean_mae + 0.025, "bounded gap to clean: {on:.4} vs {clean_mae:.4}");
}

/// Seed-robustness sweep for the chosen gait demonstration point — run
/// with `cargo test --release --test artifact_robustness report_seed --
/// --ignored --nocapture`. The checked-in floors above are exact
/// regressions at `ARTIFACT_SEED`; this report shows how the margins
/// spread across other draws when re-tuning.
#[test]
#[ignore = "tuning report, not a regression"]
fn report_seed_sweep() {
    let clean = recording();
    let clean_mae = mae_for(&clean, pipeline_cfg(), None);
    println!("clean mae={clean_mae:.4}");
    let front = gait_front();
    for seed in [23u64, 57, 91, 130] {
        let mut cfg = ArtifactConfig::gait(DURATION_S, seed);
        {
            let g = cfg.gait.as_mut().unwrap();
            let demo = gait_scenario().gait.unwrap();
            g.amplitude = demo.amplitude;
            g.decay_s = demo.decay_s;
            g.jitter = demo.jitter;
        }
        let rec = contaminated(&cfg);
        let off = mae_for(&rec, pipeline_cfg(), None);
        let on = mae_for(&rec, pipeline_cfg(), Some(front.clone()));
        println!("seed={seed:3} off={off:.4} on={on:.4} ratio={:.3}", on / off);
    }
    for seed in [23u64, 57] {
        let spikes = contaminated(&ArtifactConfig::spikes(seed));
        let s_off = mae_for(&spikes, pipeline_cfg(), None);
        let s_on = mae_for(&spikes, pipeline_cfg(), Some(HpssFrontConfig::default()));
        println!("spikes seed={seed:3} off={s_off:.4} on(default)={s_on:.4}");
        let wander = contaminated(&ArtifactConfig::wander(seed));
        let w_off = mae_for(&wander, pipeline_cfg(), None);
        let w_on = mae_for(&wander, pipeline_cfg(), Some(HpssFrontConfig::default()));
        println!("wander seed={seed:3} off={w_off:.4} on(default)={w_on:.4}");
    }
}
