//! Property tests for the HPSS stage, pinning the three contracts the
//! transient-rejection path rests on:
//!
//! 1. The shared 2-D median filter (`dhf_dsp::median`) is **bit-identical**
//!    to the obvious gather-and-sort reference across shapes and kernel
//!    widths, including the shrinking edge-clamped windows and even-width
//!    forcing.
//! 2. The soft median masks (`dhf_baselines::hpss::MedianHpss`) are
//!    complementary — `H + P ≤ 1`, with equality up to the `1e-10`
//!    stabilizer wherever the spectrogram has energy — so the split
//!    conserves the reconstruction: `harmonic + percussive ≈ istft(stft(x))`.
//! 3. The streaming front filter (`dhf_stream::FrontFilter`) is the same
//!    algorithm as the offline reference: on a whole-signal chunk its
//!    output matches `MedianHpss`'s harmonic component in the interior,
//!    away from the windowing edges and the streaming zero-pad tail
//!    (mirroring the interior-equivalence style of
//!    `crates/stream/tests/equivalence.rs`).

use dhf::baselines::hpss::MedianHpss;
use dhf::dsp::median::median_filter_2d;
use dhf::dsp::stft::{istft, stft, StftConfig};
use dhf::stream::{FrontFilter, HpssFrontConfig};
use proptest::prelude::*;
use std::f64::consts::TAU;

/// Gather-and-sort median: the reference `median_filter_2d` must equal.
fn naive_median(win: &mut [f64]) -> f64 {
    win.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = win.len();
    if n % 2 == 1 {
        win[n / 2]
    } else {
        0.5 * (win[n / 2 - 1] + win[n / 2])
    }
}

/// The shared click-train-over-tones fixture: sustained tones at `f1`/`f2`
/// plus an exponentially decaying click every `click_every` samples.
fn clicky_tones(
    n: usize,
    fs: f64,
    f1: f64,
    f2: f64,
    a2: f64,
    click_every: usize,
    click_amp: f64,
) -> Vec<f64> {
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            (TAU * f1 * t).sin() + a2 * (TAU * f2 * t).sin()
        })
        .collect();
    let mut i = click_every;
    while i < n {
        for j in 0..12.min(n - i) {
            x[i + j] += click_amp * (-(j as f64) / 4.0).exp();
        }
        i += click_every;
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn median_2d_is_bit_identical_to_gather_sort(
        rows in 1usize..9,
        cols in 1usize..9,
        kr in 1usize..8,
        kc in 1usize..8,
        values in prop::collection::vec(-1e3f64..1e3, 64),
    ) {
        let img = &values[..rows * cols];
        let got = median_filter_2d(img, rows, cols, kr, kc);
        // The filter forces even kernel widths to the next odd.
        let (hr, hc) = ((kr | 1) / 2, (kc | 1) / 2);
        let mut win = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                win.clear();
                for rr in r.saturating_sub(hr)..(r + hr + 1).min(rows) {
                    for cc in c.saturating_sub(hc)..(c + hc + 1).min(cols) {
                        win.push(img[rr * cols + cc]);
                    }
                }
                let want = naive_median(&mut win);
                prop_assert_eq!(
                    got[r * cols + c].to_bits(),
                    want.to_bits(),
                    "({},{}) kernel {}x{}: {} != {}",
                    r, c, kr, kc, got[r * cols + c], want
                );
            }
        }
    }

    #[test]
    fn masks_are_complementary(
        bins in 1usize..7,
        frames in 1usize..7,
        kt in 1usize..6,
        kf in 1usize..6,
        power in 0.5f64..4.0,
        values in prop::collection::vec(0.1f64..10.0, 36),
    ) {
        let mag = &values[..bins * frames];
        let hpss = MedianHpss {
            kernel_time: kt,
            kernel_freq: kf,
            power,
            ..MedianHpss::default()
        };
        let (mh, mp) = hpss.masks(mag, bins, frames);
        for i in 0..mag.len() {
            prop_assert!((0.0..=1.0).contains(&mh[i]), "mask_h[{}] = {}", i, mh[i]);
            prop_assert!((0.0..=1.0).contains(&mp[i]), "mask_p[{}] = {}", i, mp[i]);
            let sum = mh[i] + mp[i];
            // Every magnitude is ≥ 0.1, so every median is too, and the
            // enhanced images dwarf the 1e-10 stabilizer: the pair must
            // sum to one essentially exactly, never beyond it.
            prop_assert!(
                (1.0 - 1e-5..=1.0 + 1e-12).contains(&sum),
                "mask sum at {} is {} (H {}, P {})",
                i, sum, mh[i], mp[i]
            );
        }
    }

    /// Complementarity through the synthesis path: the two masked
    /// resyntheses reassemble the unmasked reconstruction.
    #[test]
    fn split_components_conserve_the_reconstruction(
        f1 in 0.8f64..3.0,
        f2 in 3.5f64..8.0,
        a2 in 0.1f64..1.0,
        click_every in 120usize..260,
        click_amp in 0.5f64..3.0,
        n in 900usize..1400,
    ) {
        let fs = 100.0;
        let x = clicky_tones(n, fs, f1, f2, a2, click_every, click_amp);
        let hpss = MedianHpss { window_s: 1.28, hop_s: 0.32, ..MedianHpss::default() };
        let parts = hpss.split(&x, fs).unwrap();

        let cfg = StftConfig::new(128, 32, fs).unwrap();
        let recon = istft(&stft(&x, &cfg).unwrap());
        prop_assert_eq!(parts.harmonic.len(), recon.len());
        let rms = (recon.iter().map(|v| v * v).sum::<f64>() / recon.len() as f64).sqrt();
        for (i, &r) in recon.iter().enumerate() {
            let sum = parts.harmonic[i] + parts.percussive[i];
            prop_assert!(
                (sum - r).abs() <= 1e-6 * rms.max(1.0),
                "H+P diverges from the reconstruction at {}: {} vs {}",
                i, sum, r
            );
        }
    }

    #[test]
    fn streaming_filter_matches_offline_harmonic_interior(
        f1 in 0.8f64..3.0,
        f2 in 3.5f64..8.0,
        a2 in 0.1f64..1.0,
        click_every in 120usize..260,
        click_amp in 0.5f64..3.0,
        n in 2200usize..3000,
    ) {
        let fs = 100.0;
        let mut x = clicky_tones(n, fs, f1, f2, a2, click_every, click_amp);
        // Zero the mean so the streaming filter's mean-restore path and
        // the mean-naive offline reference see the same spectrogram.
        let mean = x.iter().sum::<f64>() / n as f64;
        for v in &mut x {
            *v -= mean;
        }

        let fcfg = HpssFrontConfig::default();
        let mut filter = FrontFilter::new(fcfg.clone(), fs).unwrap();
        let got = filter.filter(&x).to_vec();
        prop_assert_eq!(got.len(), n);

        let offline = MedianHpss {
            window_s: fcfg.window_len as f64 / fs,
            hop_s: fcfg.hop as f64 / fs,
            kernel_time: fcfg.kernel_time,
            kernel_freq: fcfg.kernel_freq,
            power: fcfg.power,
            margin_h: fcfg.margin_h,
            margin_p: fcfg.margin_p,
        };
        let want = offline.split(&x, fs).unwrap().harmonic;

        // Interior: past one analysis window plus the reach of the time
        // median (the streaming zero-pad tail feeds extra frames into the
        // last kernel_time/2 medians, and istft edge normalization covers
        // one window at each end).
        let skip = 2 * fcfg.window_len + (fcfg.kernel_time / 2 + 1) * fcfg.hop;
        prop_assert!(n > 2 * skip, "fixture too short for the interior");
        let rms = (x.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
        for i in skip..n - skip {
            prop_assert!(
                (got[i] - want[i]).abs() <= 1e-6 * rms.max(1.0),
                "streaming/offline divergence at {}: {} vs {}",
                i, got[i], want[i]
            );
        }
    }
}
