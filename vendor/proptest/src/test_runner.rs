//! Runner configuration, deterministic seeding and case-level errors.

/// Mirrors `proptest::test_runner::Config` (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Failure of a single generated case; rendered with the offending inputs
/// by the [`proptest!`](crate::proptest) harness.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test generator (SplitMix64 seeded by an FNV-1a hash of
/// the test's fully-qualified name), so failures reproduce run to run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier.
    pub fn deterministic(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
