//! Input strategies: how `x in <expr>` draws values.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A source of generated inputs for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + (self.end - self.start) * u;
                if v < self.end { v } else { self.start }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// A strategy that always yields clones of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of `len` elements drawn from `element`
    /// (upstream also accepts a length *range*; the suite only uses fixed
    /// lengths).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}
