//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset the DHF test-suite uses: the [`proptest!`] macro
//! (with an optional `#![proptest_config(..)]` inner attribute), range
//! strategies over integers and floats, and the `prop_assert*` family.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test draws `cases` deterministic samples (seeded from
//! the test's module path and name, so runs are reproducible) and reports
//! the first failing input verbatim.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use strategy::collection;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares a block of property tests.
///
/// Supported grammar (a subset of upstream proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0usize..100, y in 0.0f64..1.0) {
///         prop_assert!(x as f64 * y < 100.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        let mut inputs = ::std::string::String::new();
                        $(
                            inputs.push_str(stringify!($arg));
                            inputs.push_str(" = ");
                            inputs.push_str(&::std::format!("{:?}", $arg));
                            inputs.push_str("; ");
                        )+
                        panic!(
                            "property `{}` failed at case {}/{} with {}\n{}",
                            stringify!($name), case + 1, config.cases, inputs, err,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
/// Like the real crate's macro, extra arguments become a custom message
/// prepended to the left/right dump.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            ::std::format!($($fmt)+),
            l,
            r,
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_respected(a in 3usize..10, b in -2.0f64..2.0, c in 1u64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn arithmetic_holds(x in 0i64..100, y in 0i64..100) {
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x - y - 1, x - y);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 1/5")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]

            #[allow(unused)]
            fn always_fails(v in 0u64..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
