//! Minimal, dependency-free stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no registry access, so this workspace vendors
//! exactly the surface the DHF crates use: the [`Rng`] extension trait with
//! `gen_range` / `gen` / `gen_bool` / `fill`, the [`SeedableRng`] seeding
//! trait, and [`rngs::StdRng`] — here a xoshiro256++ generator seeded via
//! SplitMix64. Determinism for a given seed is guaranteed across runs and
//! platforms, which is all the test-suite and synthesis code rely on.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T`
    /// (floats in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a random word to a double in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a random word to a float in `[0, 1)` using the top 24 bits.
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`; `hi` itself is never returned.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range requires a non-empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range requires a non-empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        if v < hi {
            v
        } else {
            lo
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let v = lo + (hi - lo) * unit_f32(rng.next_u64());
        if v < hi {
            v
        } else {
            lo
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_statistics_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean of U[0,1) was {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "gen_bool(0.25) rate was {rate}");
    }
}
