//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the DHF kernel benches use: [`Criterion`] with
//! `bench_function`, builder-style `sample_size` / `measurement_time`
//! configuration, a [`Bencher`] with `iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a straightforward
//! warmup-then-sample wall-clock loop reporting min / mean / max per
//! iteration — no statistics engine, plots or HTML reports.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Benchmark driver: times closures and prints a one-line summary each.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Times `f` (which receives a [`Bencher`]) and prints a summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm up and estimate the per-iteration cost.
        let warm_up_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            bencher.iters = 1;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose an iteration count so each sample is measurable but the
        // whole benchmark respects the measurement-time budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).clamp(1.0, 1e9) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            format_time(min),
            format_time(mean),
            format_time(max),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs and times `routine` for the harness-chosen iteration count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a group of benchmark functions, optionally with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 2 + 2)
        });
        assert!(calls >= 4, "expected warmup + 3 samples, got {calls}");
    }

    #[test]
    fn format_time_picks_sensible_units() {
        assert!(format_time(3.2e-9).ends_with("ns"));
        assert!(format_time(4.5e-6).ends_with("us"));
        assert!(format_time(7.8e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with('s'));
    }
}
