//! # Deep Harmonic Finesse (DHF)
//!
//! A production-quality Rust reproduction of *"Deep Harmonic Finesse:
//! Signal Separation in Wearable Systems with Limited Data"* (DAC 2024).
//!
//! DHF separates non-stationary quasi-periodic sources — respiration,
//! maternal pulse, fetal pulse — from a **single** mixed sensor channel,
//! with **no training dataset**, given only the sources' fundamental
//! frequency tracks. This umbrella crate re-exports every subsystem:
//!
//! * [`dsp`] — FFT/STFT stack, filters, interpolation (all from scratch).
//! * [`tensor`] — f32 tensors with reverse-mode autograd and the paper's
//!   dilated harmonic convolution.
//! * [`nn`] — layers and the SpAc LU-Net deep-prior architecture.
//! * [`synth`] — quasi-periodic signal synthesis, Table-1 dataset and the
//!   simulated in-vivo TFO recordings.
//! * [`baselines`] — EMD, VMD, NMF, REPET(-Ext), spectral masking.
//! * [`core`] — pattern alignment, harmonic masking, deep-prior
//!   in-painting, and the multi-round separation pipeline.
//! * [`stream`] — chunked online separation with bounded latency and
//!   overlap-add stitched chunk seams.
//! * [`serve`] — sharded multi-session serving runtime: batched
//!   scheduling, bounded queues with backpressure, latency telemetry.
//! * [`metrics`] — SDR/MSE/correlation with the paper's averaging rules.
//! * [`obs`] — zero-dependency stage tracing and profiling: runtime-gated
//!   spans over every pipeline stage, per-stage latency breakdowns, and
//!   Prometheus/JSON exposition of the serving telemetry.
//! * [`oximetry`] — SpO2 estimation from dual-wavelength PPG: the Eq. 10
//!   calibration plus the end-to-end fetal-oximetry trend pipeline,
//!   offline and streaming.
//!
//! `docs/ARCHITECTURE.md` in the repository maps the crate graph, the
//! data flow, and which crate to touch for a given change.
//!
//! # Quickstart
//!
//! ```no_run
//! use dhf::synth::table1;
//! use dhf::core::{DhfConfig, separate};
//!
//! // Generate the paper's synthesized mixed signal 1 (two sources).
//! let mix = table1::mixed_signal(1, 42);
//! // Separate using the ground-truth fundamental-frequency tracks.
//! let cfg = DhfConfig::default();
//! let separated = separate(&mix.samples, mix.fs, &mix.f0_tracks(), &cfg).unwrap();
//! assert_eq!(separated.sources.len(), 2);
//! ```

#![warn(missing_docs)]

pub use dhf_baselines as baselines;
pub use dhf_core as core;
pub use dhf_dsp as dsp;
pub use dhf_metrics as metrics;
pub use dhf_nn as nn;
pub use dhf_obs as obs;
pub use dhf_oximetry as oximetry;
pub use dhf_serve as serve;
pub use dhf_stream as stream;
pub use dhf_synth as synth;
pub use dhf_tensor as tensor;
